"""Lock-discipline analysis: acquisition-order graph + blocking calls.

Extracts every lock a class (or module) owns — ``self._x = threading.Lock()
/ RLock() / Condition() / RWLock()`` and module-level equivalents — then
walks each function tracking the stack of locks held via ``with`` blocks
(and bare ``.acquire()`` calls).  Two rule families come out of the walk:

* ``lock-order-cycle`` — an edge A->B is recorded whenever B is acquired
  while A is held, including *transitively*: a call made inside a lock
  region contributes the locks the callee (recursively) acquires.  Locks
  threaded through constructors are unified first (``service`` passes its
  ``RWLock`` into ``AdmissionQueue(write_lock=...)``; both names are one
  lock), then the canonical graph must be acyclic.

* ``blocking-under-lock`` — a blocking call (``sendall``/``recv``/
  ``fsync``/``sleep``/``subprocess.*``) lexically inside, or reachable
  through calls made inside, a lock region.  Findings anchor at the
  ``with`` line so an intentional site carries its pragma next to the
  comment justifying it.

Call resolution is deliberately shallow-but-honest: ``self.method()``,
``self.attr.method()`` where the attribute's class is known from a
constructor assignment, and bare names that resolve uniquely to a
module-level function in the analyzed tree.  Anything dynamic
(``getattr``, module aliases) is skipped rather than guessed, trading
recall for a zero-noise default on today's source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro_lint.model import Finding, SourceFile

RULE_CYCLE = "lock-order-cycle"
RULE_BLOCKING = "blocking-under-lock"

#: Constructor names that create a mutex-like object.
_LOCK_FACTORIES = {"Lock", "RLock", "Condition", "RWLock"}

#: Attribute names whose call blocks the thread (socket/file/timer).
_BLOCKING_ATTRS = {"sendall", "recv", "recv_into", "fsync", "sleep"}

#: Cap on call-chain witnesses in messages.
_MAX_CHAIN = 4


def _is_self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _call_name(func: ast.AST) -> Optional[str]:
    """Final name of a call target (``threading.Lock`` -> ``Lock``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@dataclass
class ClassInfo:
    module: str
    name: str
    node: ast.ClassDef
    lock_attrs: Set[str] = field(default_factory=set)
    #: __init__ param name -> the ``self.`` attr it is stored into
    param_locks: Dict[str, str] = field(default_factory=dict)
    #: ``self.`` attr -> class name it was constructed from
    attr_types: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    init_params: List[str] = field(default_factory=list)

    def lock_key(self, attr: str) -> str:
        return f"{self.module}:{self.name}.{attr}"


@dataclass
class FunctionSummary:
    fid: Tuple[str, Optional[str], str]  #: (module, class, name)
    relpath: str
    #: blocking calls made directly in this function: (desc, lineno)
    direct_blocking: List[Tuple[str, int]] = field(default_factory=list)
    #: resolved callees: set of function ids
    callees: Set[Tuple[str, Optional[str], str]] = field(default_factory=set)
    #: lock keys this function acquires anywhere in its body
    acquired: Set[str] = field(default_factory=set)


@dataclass
class LockRegion:
    """One ``with <lock>:`` block in one function."""

    fid: Tuple[str, Optional[str], str]
    relpath: str
    lock_key: str
    mode: str  #: "", "read" or "write" (RWLock regions)
    lineno: int
    blocking: List[Tuple[str, int]] = field(default_factory=list)
    callees: List[Tuple[Tuple[str, Optional[str], str], int]] = field(default_factory=list)


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def find(self, key: str) -> str:
        parent = self._parent.setdefault(key, key)
        if parent != key:
            parent = self.find(parent)
            self._parent[key] = parent
        return parent

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Deterministic canonical representative: lexicographic min.
            lo, hi = sorted((ra, rb))
            self._parent[hi] = lo


class LockGraphAnalyzer:
    """Whole-tree analysis; construct once, then :meth:`run`."""

    def __init__(self, sources: Sequence[SourceFile]) -> None:
        self.sources = list(sources)
        self.classes: Dict[str, ClassInfo] = {}  #: class name -> info
        self.module_locks: Dict[str, Dict[str, str]] = {}  #: module -> name -> key
        self.functions: Dict[Tuple[str, Optional[str], str], ast.FunctionDef] = {}
        self.func_source: Dict[Tuple[str, Optional[str], str], SourceFile] = {}
        self.summaries: Dict[Tuple[str, Optional[str], str], FunctionSummary] = {}
        self.regions: List[LockRegion] = []
        self.edges: List[Tuple[str, str, str, int]] = []  #: (from, to, relpath, line)
        self.aliases = _UnionFind()

    # ---------------------------------------------------------------- #
    # Pass 1: inventory classes, locks, functions
    # ---------------------------------------------------------------- #
    def _collect(self) -> None:
        for source in self.sources:
            module = source.relpath
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    self._collect_class(module, node, source)
            # Module-level locks and functions.
            for stmt in getattr(source.tree, "body", []):
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if isinstance(target, ast.Name) and self._is_lock_factory(stmt.value):
                        self.module_locks.setdefault(module, {})[target.id] = (
                            f"{module}:{target.id}"
                        )
                elif isinstance(stmt, ast.FunctionDef):
                    fid = (module, None, stmt.name)
                    self.functions[fid] = stmt
                    self.func_source[fid] = source

    @staticmethod
    def _is_lock_factory(value: ast.AST) -> bool:
        return (
            isinstance(value, ast.Call)
            and _call_name(value.func) in _LOCK_FACTORIES
        )

    def _collect_class(
        self, module: str, node: ast.ClassDef, source: SourceFile
    ) -> None:
        info = ClassInfo(module=module, name=node.name, node=node)
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            info.methods[item.name] = item
            fid = (module, node.name, item.name)
            self.functions[fid] = item
            self.func_source[fid] = source
            if item.name == "__init__":
                info.init_params = [arg.arg for arg in item.args.args[1:]]
        for method in info.methods.values():
            self._scan_attr_assignments(info, method)
        # First definition wins on a (rare) duplicate class name; the
        # analysis only needs *a* consistent view per name.
        self.classes.setdefault(node.name, info)

    def _scan_attr_assignments(self, info: ClassInfo, func: ast.FunctionDef) -> None:
        # One-hop local propagation: ``v = ClassName(...)`` then
        # ``self.x = v`` still records the attribute's type.
        local_types: Dict[str, str] = {}
        params = {arg.arg for arg in func.args.args[1:]}
        for stmt in ast.walk(func):
            if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
                continue
            target = stmt.targets[0]
            value = stmt.value
            if isinstance(target, ast.Name) and isinstance(value, ast.Call):
                name = _call_name(value.func)
                if name and name[:1].isupper():
                    local_types[target.id] = name
                continue
            attr = _is_self_attr(target)
            if attr is None:
                continue
            if self._is_lock_factory(value):
                info.lock_attrs.add(attr)
            elif isinstance(value, ast.Name):
                ref = value.id
                if ref in params and ("lock" in attr or "cond" in attr or "lock" in ref):
                    # Lock threaded in through the constructor.
                    info.lock_attrs.add(attr)
                    info.param_locks[ref] = attr
                elif ref in local_types:
                    info.attr_types[attr] = local_types[ref]
            elif isinstance(value, ast.Call):
                name = _call_name(value.func)
                if name and name[:1].isupper() and name not in _LOCK_FACTORIES:
                    info.attr_types[attr] = name

    # ---------------------------------------------------------------- #
    # Pass 2: constructor aliasing (one lock, two owners)
    # ---------------------------------------------------------------- #
    def _unify_constructor_locks(self) -> None:
        for fid, func in self.functions.items():
            module, class_name, _ = fid
            owner = self.classes.get(class_name) if class_name else None
            if owner is None:
                continue
            for call in ast.walk(func):
                if not isinstance(call, ast.Call):
                    continue
                callee_name = _call_name(call.func)
                callee = self.classes.get(callee_name) if callee_name else None
                if callee is None or not callee.param_locks:
                    continue
                for index, arg in enumerate(call.args):
                    self._maybe_union(owner, callee, self._param_at(callee, index), arg)
                for keyword in call.keywords:
                    self._maybe_union(owner, callee, keyword.arg, keyword.value)

    @staticmethod
    def _param_at(callee: ClassInfo, index: int) -> Optional[str]:
        if 0 <= index < len(callee.init_params):
            return callee.init_params[index]
        return None

    def _maybe_union(
        self,
        owner: ClassInfo,
        callee: ClassInfo,
        param: Optional[str],
        arg: ast.AST,
    ) -> None:
        if param is None or param not in callee.param_locks:
            return
        attr = _is_self_attr(arg)
        if attr is not None and attr in owner.lock_attrs:
            self.aliases.union(
                owner.lock_key(attr), callee.lock_key(callee.param_locks[param])
            )

    # ---------------------------------------------------------------- #
    # Pass 3: per-function walk (regions, blocking, callees, edges)
    # ---------------------------------------------------------------- #
    def _walk_functions(self) -> None:
        for fid, func in self.functions.items():
            source = self.func_source[fid]
            summary = FunctionSummary(fid=fid, relpath=source.relpath)
            self.summaries[fid] = summary
            walker = _FunctionWalker(self, fid, summary, source)
            walker.walk(func)

    def resolve_lock_expr(
        self, expr: ast.AST, class_name: Optional[str], module: str
    ) -> Optional[Tuple[str, str]]:
        """``(lock_key, mode)`` for a with-item / acquire target, or None."""
        info = self.classes.get(class_name) if class_name else None
        # with self._lock:
        attr = _is_self_attr(expr)
        if attr is not None and info is not None and attr in info.lock_attrs:
            return info.lock_key(attr), ""
        # with self._rw.read() / .write():
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("read", "write")
        ):
            attr = _is_self_attr(expr.func.value)
            if attr is not None and info is not None and attr in info.lock_attrs:
                return info.lock_key(attr), expr.func.attr
        # with _module_level_lock:
        if isinstance(expr, ast.Name):
            key = self.module_locks.get(module, {}).get(expr.id)
            if key is not None:
                return key, ""
        return None

    def resolve_callee(
        self, call: ast.Call, class_name: Optional[str], module: str
    ) -> Optional[Tuple[str, Optional[str], str]]:
        func = call.func
        if isinstance(func, ast.Attribute):
            attr = _is_self_attr(func.value)
            if func.value.__class__ is ast.Name and func.value.id == "self":
                # self.method()
                fid = (module, class_name, func.attr)
                return fid if fid in self.functions else None
            if attr is not None and class_name is not None:
                # self.attr.method(): resolve attr's class if known.
                owner = self.classes.get(class_name)
                type_name = owner.attr_types.get(attr) if owner else None
                target = self.classes.get(type_name) if type_name else None
                if target is not None and func.attr in target.methods:
                    return (target.module, target.name, func.attr)
            return None
        if isinstance(func, ast.Name):
            matches = [
                fid
                for fid in self.functions
                if fid[1] is None and fid[2] == func.id
            ]
            if len(matches) == 1:
                return matches[0]
        return None

    @staticmethod
    def classify_blocking(call: ast.Call) -> Optional[str]:
        """A human-readable description when ``call`` blocks, else None."""
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in _BLOCKING_ATTRS:
                return func.attr
            if isinstance(func.value, ast.Name) and func.value.id == "subprocess":
                return f"subprocess.{func.attr}"
        return None

    # ---------------------------------------------------------------- #
    # Pass 4: summary fixpoint + findings
    # ---------------------------------------------------------------- #
    def _propagate(self) -> Tuple[
        Dict[Tuple[str, Optional[str], str], Dict[str, str]],
        Dict[Tuple[str, Optional[str], str], Set[str]],
    ]:
        """Transitive blocking calls and lock acquisitions per function.

        Returns ``(blocking, acquires)`` where ``blocking[fid]`` maps a
        blocking-call description to a witness call chain and
        ``acquires[fid]`` is the set of lock keys reachable from ``fid``.
        """
        blocking: Dict[Tuple[str, Optional[str], str], Dict[str, str]] = {}
        acquires: Dict[Tuple[str, Optional[str], str], Set[str]] = {}
        for fid, summary in self.summaries.items():
            blocking[fid] = {desc: desc for desc, _ in summary.direct_blocking}
            acquires[fid] = set(summary.acquired)
        changed = True
        iterations = 0
        while changed and iterations < 50:
            changed = False
            iterations += 1
            for fid, summary in self.summaries.items():
                for callee in summary.callees:
                    if callee not in self.summaries:
                        continue
                    callee_label = callee[2] + "()"
                    for desc, chain in blocking[callee].items():
                        if desc not in blocking[fid]:
                            if chain.count("->") < _MAX_CHAIN:
                                blocking[fid][desc] = f"{callee_label} -> {chain}"
                            else:
                                blocking[fid][desc] = chain
                            changed = True
                    missing = acquires[callee] - acquires[fid]
                    if missing:
                        acquires[fid] |= missing
                        changed = True
        return blocking, acquires

    def run(self) -> List[Finding]:
        """Full analysis; returns unwaived findings."""
        self._collect()
        self._unify_constructor_locks()
        self._walk_functions()
        blocking, acquires = self._propagate()

        findings: List[Finding] = []
        findings.extend(self._blocking_findings(blocking))
        findings.extend(self._cycle_findings(acquires))
        return findings

    def _blocking_findings(self, blocking) -> List[Finding]:
        findings = []
        seen: Set[Tuple[str, int, str]] = set()
        for region in self.regions:
            label = region.lock_key + (f".{region.mode}()" if region.mode else "")
            for desc, lineno in region.blocking:
                key = (region.relpath, region.lineno, desc)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        rule=RULE_BLOCKING,
                        path=region.relpath,
                        line=region.lineno,
                        message=(
                            f"blocking call '{desc}' (line {lineno}) while"
                            f" holding {label}"
                        ),
                    )
                )
            for callee, lineno in region.callees:
                chains = blocking.get(callee, {})
                for desc, chain in chains.items():
                    key = (region.relpath, region.lineno, desc)
                    if key in seen:
                        continue
                    seen.add(key)
                    findings.append(
                        Finding(
                            rule=RULE_BLOCKING,
                            path=region.relpath,
                            line=region.lineno,
                            message=(
                                f"blocking call '{desc}' reachable while"
                                f" holding {label} via {callee[2]}() -> {chain}"
                                f" (call at line {lineno})"
                            ),
                        )
                    )
        return findings

    def _cycle_findings(self, acquires) -> List[Finding]:
        # Materialise transitive edges: a call inside a region implies the
        # region's lock precedes every lock the callee acquires.
        edges = list(self.edges)
        for region in self.regions:
            for callee, lineno in region.callees:
                for key in acquires.get(callee, ()):  # may be empty
                    edges.append((region.lock_key, key, region.relpath, lineno))

        graph: Dict[str, Set[str]] = {}
        sites: Dict[Tuple[str, str], Tuple[str, int]] = {}
        for src, dst, relpath, lineno in edges:
            a, b = self.aliases.find(src), self.aliases.find(dst)
            if a == b:
                continue  # re-entrant / aliased self-edge: not an inversion
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
            sites.setdefault((a, b), (relpath, lineno))

        findings = []
        for component in _strongly_connected(graph):
            if len(component) < 2:
                continue
            ordered = sorted(component)
            witness = None
            for a in ordered:
                for b in graph.get(a, ()):  # first in-component edge
                    if b in component:
                        witness = sites.get((a, b), ("<unknown>", 0))
                        break
                if witness:
                    break
            relpath, lineno = witness or ("<unknown>", 0)
            findings.append(
                Finding(
                    rule=RULE_CYCLE,
                    path=relpath,
                    line=lineno,
                    message=(
                        "lock-order inversion: cycle through "
                        + " <-> ".join(ordered)
                    ),
                )
            )
        return findings


class _FunctionWalker:
    """Walk one function body maintaining the held-lock stack."""

    def __init__(
        self,
        analyzer: LockGraphAnalyzer,
        fid: Tuple[str, Optional[str], str],
        summary: FunctionSummary,
        source: SourceFile,
    ) -> None:
        self.analyzer = analyzer
        self.module, self.class_name, _ = fid
        self.fid = fid
        self.summary = summary
        self.source = source
        self.held: List[LockRegion] = []

    def walk(self, func: ast.FunctionDef) -> None:
        for stmt in func.body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._visit_with(node)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested definitions run later, under their own stack
        if isinstance(node, ast.Call):
            self._visit_call(node)
            return  # _visit_call walks its own children
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _visit_with(self, node: ast.With) -> None:
        opened: List[LockRegion] = []
        for item in node.items:
            resolved = self.analyzer.resolve_lock_expr(
                item.context_expr, self.class_name, self.module
            )
            if resolved is None:
                # Still scan the expression itself (e.g. a call guard).
                self._visit(item.context_expr)
                continue
            key, mode = resolved
            self._record_acquisition(key, node.lineno)
            region = LockRegion(
                fid=self.fid,
                relpath=self.source.relpath,
                lock_key=key,
                mode=mode,
                lineno=node.lineno,
            )
            self.analyzer.regions.append(region)
            self.held.append(region)
            opened.append(region)
        for stmt in node.body:
            self._visit(stmt)
        for region in opened:
            self.held.remove(region)

    def _visit_call(self, call: ast.Call) -> None:
        # Bare .acquire() on a known lock: an acquisition without a region.
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            resolved = self.analyzer.resolve_lock_expr(
                func.value, self.class_name, self.module
            )
            if resolved is not None:
                self._record_acquisition(resolved[0], call.lineno)

        desc = self.analyzer.classify_blocking(call)
        if desc is not None:
            self.summary.direct_blocking.append((desc, call.lineno))
            for region in self.held:
                region.blocking.append((desc, call.lineno))

        callee = self.analyzer.resolve_callee(call, self.class_name, self.module)
        if callee is not None:
            self.summary.callees.add(callee)
            for region in self.held:
                region.callees.append((callee, call.lineno))
        # Arguments may hold further calls (``f(g())``); keep walking.
        for child in ast.iter_child_nodes(call):
            self._visit(child)

    def _record_acquisition(self, key: str, lineno: int) -> None:
        self.summary.acquired.add(key)
        for region in self.held:
            self.analyzer.edges.append(
                (region.lock_key, key, self.source.relpath, lineno)
            )


def _strongly_connected(graph: Dict[str, Set[str]]) -> List[Set[str]]:
    """Tarjan's SCC, iterative (the graph is tiny but recursion-free
    keeps fixture-crafted pathological graphs safe)."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    result: List[Set[str]] = []
    counter = [0]

    for root in graph:
        if root in index:
            continue
        work = [(root, iter(graph[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(graph[child])))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                result.append(component)
    return result


def analyze(sources: Sequence[SourceFile]) -> List[Finding]:
    """Run the lock-discipline analysis over ``sources``."""
    return LockGraphAnalyzer(sources).run()
