"""``repro-lint`` command line: run the static rules, exit non-zero on findings.

Usage::

    python tools/repro-lint                    # lint src/repro against docs/
    python tools/repro-lint --rules op-contract,ack-before-fsync
    python tools/repro-lint --src-root tools/repro_lint/fixtures/lock_cycle \
        --no-docs --rules lock-order-cycle     # fixture self-test form

Rules anchor findings at ``path:line`` and honour ``# repro-lint:
allow[rule-id]`` pragmas on the anchored line (see ``model.py``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro_lint import contracts, invariants, lockgraph
from repro_lint.model import Finding, SourceFile, drop_waived, load_tree

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Only these subtrees own locks the discipline rules reason about; a
#: fixture tree (no such subtree) is analyzed whole.
LOCK_SCOPE = ("service/", "store/", "obs/", "engine/", "chaos/")

RULES = (
    lockgraph.RULE_CYCLE,
    lockgraph.RULE_BLOCKING,
    contracts.RULE_ERRORS,
    contracts.RULE_OPS,
    contracts.RULE_FAILPOINTS,
    contracts.RULE_METRICS_DOC,
    invariants.RULE_WALLCLOCK,
    invariants.RULE_SWALLOW,
    invariants.RULE_ACK,
)

_CONTRACT_RULES = {
    contracts.RULE_ERRORS,
    contracts.RULE_OPS,
    contracts.RULE_FAILPOINTS,
    contracts.RULE_METRICS_DOC,
}
_LOCK_RULES = {lockgraph.RULE_CYCLE, lockgraph.RULE_BLOCKING}
_INVARIANT_RULES = {
    invariants.RULE_WALLCLOCK,
    invariants.RULE_SWALLOW,
    invariants.RULE_ACK,
}


def lint(
    src_root: Path,
    docs_root: Optional[Path],
    rules: Sequence[str],
) -> List[Finding]:
    """Run ``rules`` over ``src_root``; returns surviving findings."""
    selected = set(rules)
    sources = load_tree(src_root)
    findings: List[Finding] = []

    if selected & _LOCK_RULES:
        scoped = [
            source
            for source in sources
            if source.relpath.replace("\\", "/").startswith(LOCK_SCOPE)
        ] or sources
        findings.extend(lockgraph.analyze(scoped))
    if selected & _CONTRACT_RULES:
        findings.extend(contracts.run_all(src_root, docs_root, sources))
    if selected & _INVARIANT_RULES:
        findings.extend(invariants.run_all(sources))

    findings = [finding for finding in findings if finding.rule in selected]
    return drop_waived(findings, sources)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="repo-specific concurrency & wire-contract lint",
    )
    parser.add_argument(
        "--src-root",
        type=Path,
        default=REPO_ROOT / "src" / "repro",
        help="tree to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--docs-root",
        type=Path,
        default=REPO_ROOT / "docs",
        help="directory holding PROTOCOL.md / OPERATIONS.md (default: docs/)",
    )
    parser.add_argument(
        "--no-docs",
        action="store_true",
        help="skip the doc-backed contract checks (fixture trees)",
    )
    parser.add_argument(
        "--rules",
        default=",".join(RULES),
        help="comma-separated rule ids (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0

    rules = [rule.strip() for rule in args.rules.split(",") if rule.strip()]
    unknown = set(rules) - set(RULES)
    if unknown:
        print(f"unknown rule(s): {sorted(unknown)}", file=sys.stderr)
        return 2
    if not args.src_root.exists():
        print(f"no such source root: {args.src_root}", file=sys.stderr)
        return 2

    docs_root = None if args.no_docs else args.docs_root
    findings = lint(args.src_root, docs_root, rules)
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(finding.render())
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"repro-lint: clean ({len(rules)} rule(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
