"""Runtime lock-order detector: instrumented locks behind an env var.

:func:`install` monkeypatches the ``threading`` lock factories
(``Lock`` / ``RLock`` / ``Condition``'s internal lock) with thin
proxies that record, per thread, the stack of locks currently held and,
globally, every *acquisition-order edge* — "lock B was acquired while
lock A was held".  Locks are named by their creation site
(``file:line``), so every lock created at one site is one node: the
graph is the program's lock *ordering discipline*, not its object
population.

Same activation pattern as the chaos failpoints — zero cost when off:
nothing in ``src/`` imports this module; ``tests/conftest.py`` installs
it only when ``REPRO_LOCKCHECK=1``, and the tier-2 concurrency/chaos CI
jobs assert :func:`assert_clean` at session end: the observed graph must
be acyclic (no lock-order inversion was *executed*; an inversion means
two threads can deadlock under the right interleaving) and no hold may
exceed ``REPRO_LOCKCHECK_MAX_HOLD_MS`` when that is set.

The proxies implement the public lock API plus the private hooks the
stdlib probes for — ``Condition``'s ``_release_save`` /
``_acquire_restore`` / ``_is_owned`` (so an RLock-backed condition keeps
correct ownership across ``wait()``) and ``_at_fork_reinit`` (so
``os.register_at_fork`` handlers such as ``concurrent.futures``'s keep
working) — each keeping the per-thread held stack truthful.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from collections import defaultdict
from typing import Dict, List, Optional, Set, Tuple

ENV_VAR = "REPRO_LOCKCHECK"
HOLD_ENV_VAR = "REPRO_LOCKCHECK_MAX_HOLD_MS"

_original_lock = threading.Lock
_original_rlock = threading.RLock

#: Internal mutex guarding the global graph; created with the *original*
#: factory and never tracked, so the tracker cannot deadlock itself.
_graph_lock = _original_lock()

#: (holder serial, acquired serial) object-level ordering edges.
_obj_edges: Set[Tuple[int, int]] = set()
#: lock serial -> creation site.
_site_of: Dict[int, str] = {}
#: (from_site, to_site) -> "thread-name" witness for diagnostics.
_edge_witness: Dict[Tuple[str, str], str] = {}
#: (site, held-for-seconds, thread) records exceeding the threshold.
_hold_violations: List[Tuple[str, float, str]] = []

_tls = threading.local()
_installed = False
_hold_threshold: Optional[float] = None
_serials = iter(range(1, 1 << 62))


def _held_stack() -> List[Tuple[int, str]]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def _creation_site() -> str:
    """``file:line`` of the frame that created the lock (first frame
    outside this module)."""
    frame = sys._getframe(2)
    here = __file__
    while frame is not None and frame.f_code.co_filename == here:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - interpreter teardown
        return "<unknown>"
    filename = frame.f_code.co_filename
    for marker in ("/src/", "/tools/", "/tests/", "/benchmarks/"):
        index = filename.rfind(marker)
        if index >= 0:
            filename = filename[index + 1 :]
            break
    return f"{filename}:{frame.f_lineno}"


class TrackedLock:
    """Proxy over a real lock recording acquisition order and hold time."""

    __slots__ = ("_lock", "_site", "_serial", "_acquired_at")

    def __init__(self, real_lock, site: Optional[str] = None) -> None:
        self._lock = real_lock
        self._site = site or _creation_site()
        self._serial = next(_serials)
        self._acquired_at: Dict[int, float] = {}
        with _graph_lock:
            _site_of[self._serial] = self._site

    # -- lock API ---------------------------------------------------- #
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._note_acquired()
        return acquired

    def release(self) -> None:
        self._note_released()
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TrackedLock {self._site} wrapping {self._lock!r}>"

    # -- Condition protocol ------------------------------------------- #
    # threading.Condition probes its lock for these; without them an
    # RLock-backed condition would misdetect ownership via the
    # acquire(0) fallback (a re-entrant acquire *succeeds* for the
    # owner).  Each keeps the held stack truthful across wait().
    def _release_save(self):
        self._strip_thread_state()
        inner = getattr(self._lock, "_release_save", None)
        if inner is not None:
            return inner()
        self._lock.release()
        return None

    def _acquire_restore(self, state) -> None:
        inner = getattr(self._lock, "_acquire_restore", None)
        if inner is not None:
            inner(state)
        else:
            self._lock.acquire()
        self._note_acquired()

    def _is_owned(self) -> bool:
        inner = getattr(self._lock, "_is_owned", None)
        if inner is not None:
            return inner()
        if self._lock.acquire(False):
            self._lock.release()
            return False
        return True

    def _recursion_count(self) -> int:
        """RLock depth for this thread (``multiprocessing`` probes this)."""
        return self._lock._recursion_count()

    def _at_fork_reinit(self) -> None:
        """Reset after fork (``os.register_at_fork`` handlers call this)."""
        self._lock._at_fork_reinit()
        self._acquired_at.clear()

    def _strip_thread_state(self) -> None:
        """Drop every held-stack entry of this lock for this thread."""
        stack = _held_stack()
        me = self._serial
        stack[:] = [entry for entry in stack if entry[0] != me]
        self._acquired_at.pop(threading.get_ident(), None)

    # -- bookkeeping -------------------------------------------------- #
    def _note_acquired(self) -> None:
        stack = _held_stack()
        me = self._serial
        depth = sum(1 for serial, _ in stack if serial == me)
        stack.append((me, self._site))
        if depth:
            return  # re-entrant RLock acquire: not a new ordering event
        self._acquired_at[threading.get_ident()] = time.perf_counter()
        held = {(serial, site) for serial, site in stack[:-1] if serial != me}
        if held:
            thread = threading.current_thread().name
            with _graph_lock:
                for serial, site in held:
                    edge = (serial, me)
                    if edge not in _obj_edges:
                        _obj_edges.add(edge)
                        _edge_witness.setdefault((site, self._site), thread)

    def _note_released(self) -> None:
        stack = _held_stack()
        me = self._serial
        for index in range(len(stack) - 1, -1, -1):
            if stack[index][0] == me:
                del stack[index]
                break
        if any(serial == me for serial, _ in stack):
            return  # still re-entrantly held
        ident = threading.get_ident()
        started = self._acquired_at.pop(ident, None)
        if started is not None and _hold_threshold is not None:
            held_for = time.perf_counter() - started
            if held_for > _hold_threshold:
                with _graph_lock:
                    _hold_violations.append(
                        (self._site, held_for, threading.current_thread().name)
                    )


def _tracked_lock_factory():
    return TrackedLock(_original_lock())


def _tracked_rlock_factory():
    return TrackedLock(_original_rlock())


def install(hold_threshold_ms: Optional[float] = None) -> None:
    """Patch the ``threading`` lock factories; idempotent.

    ``threading.Condition()`` with no explicit lock calls the module's
    ``RLock`` binding, so conditions are tracked for free.  Modules that
    bound ``threading.Lock`` before installation keep raw locks — install
    from ``conftest.py`` before the code under test is imported.
    """
    global _installed, _hold_threshold
    if _installed:
        return
    if hold_threshold_ms is None:
        raw = os.environ.get(HOLD_ENV_VAR)
        hold_threshold_ms = float(raw) if raw else None
    _hold_threshold = (
        hold_threshold_ms / 1000.0 if hold_threshold_ms is not None else None
    )
    threading.Lock = _tracked_lock_factory
    threading.RLock = _tracked_rlock_factory
    _installed = True


def uninstall() -> None:
    """Restore the original factories (tests of the tracker itself)."""
    global _installed
    threading.Lock = _original_lock
    threading.RLock = _original_rlock
    _installed = False


def reset() -> None:
    """Drop all recorded edges and violations (keeps installation)."""
    with _graph_lock:
        _obj_edges.clear()
        _edge_witness.clear()
        del _hold_violations[:]


def is_active() -> bool:
    """True when :func:`install` has patched the factories."""
    return _installed


def edges() -> Dict[str, Set[str]]:
    """The acquisition-order graph projected onto creation sites.

    A site-level self-loop is kept only when two *distinct* locks from
    that site were observed nested in both orders (a genuine inversion);
    one-directional nesting of same-site locks (e.g. a parent/child
    hierarchy) is not a cycle.
    """
    with _graph_lock:
        obj_edges = set(_obj_edges)
        site_of = dict(_site_of)
    graph: Dict[str, Set[str]] = defaultdict(set)
    for holder, acquired in obj_edges:
        a, b = site_of.get(holder, "?"), site_of.get(acquired, "?")
        if a != b:
            graph[a].add(b)
            graph.setdefault(b, set())
        elif (acquired, holder) in obj_edges:
            graph[a].add(a)  # same-site inversion between two locks
    return dict(graph)


def hold_violations() -> List[Tuple[str, float, str]]:
    """Copy of recorded over-threshold holds."""
    with _graph_lock:
        return list(_hold_violations)


def find_cycles() -> List[List[str]]:
    """Cycles in the recorded graph, each as a closed site path."""
    graph = edges()
    cycles: List[List[str]] = []
    visiting: List[str] = []
    done: Set[str] = set()
    on_path: Set[str] = set()

    def visit(site: str) -> None:
        if site in done:
            return
        visiting.append(site)
        on_path.add(site)
        for successor in sorted(graph.get(site, ())):
            if successor in on_path:
                start = visiting.index(successor)
                cycles.append(visiting[start:] + [successor])
            else:
                visit(successor)
        on_path.discard(site)
        visiting.pop()
        done.add(site)

    for site in sorted(graph):
        visit(site)
    return cycles


def report() -> str:
    """Human-readable summary of the recorded graph and violations."""
    graph = edges()
    edge_count = sum(len(successors) for successors in graph.values())
    lines = [
        f"lockcheck: {len(graph)} lock site(s), {edge_count} ordering edge(s)"
    ]
    for cycle in find_cycles():
        witness = " / ".join(
            _edge_witness.get((a, b), "?")
            for a, b in zip(cycle, cycle[1:])
        )
        lines.append(
            "  CYCLE: " + " -> ".join(cycle) + f"  (threads: {witness})"
        )
    for site, held_for, thread in hold_violations():
        lines.append(
            f"  HOLD: {site} held {held_for * 1000.0:.1f} ms by {thread}"
        )
    return "\n".join(lines)


def assert_clean() -> None:
    """Raise ``AssertionError`` when the graph has a cycle or a hold
    exceeded the threshold."""
    cycles = find_cycles()
    holds = hold_violations()
    if cycles or holds:
        raise AssertionError(report())
