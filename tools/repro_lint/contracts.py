"""Contract-consistency checks: one source of truth, all consumers agree.

Four registries anchor the serving stack's wire and operability
contracts.  Each has consumers that can silently drift; these checks
cross-reference them mechanically:

* ``error-code-contract`` — the ``E_*`` registry in
  ``service/transport/framing.py`` vs the server's exception-type -> code
  map vs the error-code table in ``docs/PROTOCOL.md``.
* ``op-contract`` — the op vocabulary dispatched by
  ``service/service.py`` vs the wire-level idempotency partition in
  ``framing.py`` (``IDEMPOTENT_OPS`` / ``NONIDEMPOTENT_OPS``) vs the
  ``ServiceClient`` helpers vs the per-op metrics vocabulary.  An op the
  client auto-retries but the server does not treat as idempotent is a
  double-apply bug; the partition being total keeps every new op an
  explicit decision.
* ``failpoint-contract`` — the ``CATALOGUE`` in ``chaos/failpoints.py``
  vs the compiled ``fire()``/``_failpoint()`` call sites.
* ``metrics-doc-contract`` — metric names registered anywhere in
  ``src/`` vs the catalogue table in ``docs/OPERATIONS.md``.

``check_protocol_error_table`` and ``check_metrics_catalogue`` are also
imported by ``tools/check_docs.py`` so the docs CI job verifies the same
tables from the same extraction code (shared, not duplicated).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro_lint.model import Finding, SourceFile, load_source

RULE_ERRORS = "error-code-contract"
RULE_OPS = "op-contract"
RULE_FAILPOINTS = "failpoint-contract"
RULE_METRICS_DOC = "metrics-doc-contract"

_FRAMING = "service/transport/framing.py"
_SERVER = "service/transport/server.py"
_CLIENT = "service/transport/client.py"
_SERVICE = "service/service.py"
_FAILPOINTS = "chaos/failpoints.py"

_METRIC_NAME_RE = re.compile(r"^(repro_|process_|chaos_)[a-z0-9_]+$")
#: Split markdown table cells on unescaped pipes only.
_CELL_SPLIT_RE = re.compile(r"(?<!\\)\|")


# --------------------------------------------------------------------- #
# AST extraction helpers
# --------------------------------------------------------------------- #
def _load(src_root: Path, relpath: str) -> Optional[SourceFile]:
    path = src_root / relpath
    if not path.is_file():
        return None
    return load_source(path, src_root)


def _missing(rule: str, src_root: Path, relpath: str) -> Finding:
    return Finding(
        rule=rule,
        path=relpath,
        line=0,
        message=f"anchor file missing under {src_root} — contract unverifiable",
    )


def module_constants(tree: ast.AST, prefix: str) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments matching ``prefix``."""
    out: Dict[str, str] = {}
    for stmt in getattr(tree, "body", []):
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if (
            isinstance(target, ast.Name)
            and target.id.startswith(prefix)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, str)
        ):
            out[target.id] = stmt.value.value
    return out


def _find_assignment(tree: ast.AST, name: str) -> Optional[ast.AST]:
    for stmt in ast.walk(tree):
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and target.id == name:
                return stmt.value
    return None


def string_collection(value: Optional[ast.AST]) -> Optional[Set[str]]:
    """Strings in a (frozen)set/tuple/list literal, unwrapping
    ``frozenset({...})`` / ``frozenset((...))`` calls."""
    if value is None:
        return None
    if isinstance(value, ast.Call) and value.args:
        value = value.args[0]
    if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
        out = set()
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                out.add(element.value)
        return out
    return None


def dict_value_names(value: Optional[ast.AST]) -> Dict[str, str]:
    """``{"Key": E_NAME}`` dict literal -> ``{"Key": "E_NAME"}``."""
    out: Dict[str, str] = {}
    if not isinstance(value, ast.Dict):
        return out
    for key, val in zip(value.keys, value.values):
        if (
            isinstance(key, ast.Constant)
            and isinstance(key.value, str)
            and isinstance(val, ast.Name)
        ):
            out[key.value] = val.id
    return out


def dict_literal_keys(value: Optional[ast.AST]) -> Set[str]:
    if not isinstance(value, ast.Dict):
        return set()
    return {
        key.value
        for key in value.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


def extract_dispatch_ops(service: SourceFile) -> Set[str]:
    """Ops compared against in ``QueryService._dispatch``."""
    ops: Set[str] = set()
    for node in ast.walk(service.tree):
        if not (isinstance(node, ast.FunctionDef) and node.name == "_dispatch"):
            continue
        for compare in ast.walk(node):
            if (
                isinstance(compare, ast.Compare)
                and isinstance(compare.left, ast.Name)
                and compare.left.id == "op"
                and len(compare.ops) == 1
                and isinstance(compare.ops[0], ast.Eq)
                and isinstance(compare.comparators[0], ast.Constant)
                and isinstance(compare.comparators[0].value, str)
            ):
                ops.add(compare.comparators[0].value)
    return ops


def extract_request_ops(client: SourceFile) -> Set[str]:
    """Every ``{"op": "<literal>"}`` the client constructs."""
    ops: Set[str] = set()
    for node in ast.walk(client.tree):
        if not isinstance(node, ast.Dict):
            continue
        for key, value in zip(node.keys, node.values):
            if (
                isinstance(key, ast.Constant)
                and key.value == "op"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                ops.add(value.value)
    return ops


def extract_fire_sites(sources: Sequence[SourceFile]) -> List[Tuple[str, str, int]]:
    """All literal failpoint names passed to ``fire()`` / ``_failpoint()``."""
    sites: List[Tuple[str, str, int]] = []
    for source in sources:
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if name not in ("fire", "_failpoint"):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                sites.append((arg.value, source.relpath, node.lineno))
    return sites


def extract_registered_metrics(
    sources: Sequence[SourceFile],
) -> Dict[str, Tuple[str, int]]:
    """Metric name -> first registration site, from ``.counter("x")`` /
    ``.gauge("x")`` / ``.histogram("x")`` calls anywhere in the tree."""
    out: Dict[str, Tuple[str, int]] = {}
    for source in sources:
        for node in ast.walk(source.tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in ("counter", "gauge", "histogram")
            ):
                continue
            arg = node.args[0]
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and _METRIC_NAME_RE.match(arg.value)
            ):
                out.setdefault(arg.value, (source.relpath, node.lineno))
    return out


# --------------------------------------------------------------------- #
# Markdown table parsing
# --------------------------------------------------------------------- #
def _table_rows(
    lines: Sequence[str], header_cells: Sequence[str], start: int = 0
) -> List[Tuple[int, List[str]]]:
    """Rows of the first table whose header starts with ``header_cells``;
    each row is ``(lineno, cells)`` with backticks stripped."""
    rows: List[Tuple[int, List[str]]] = []
    in_table = False
    for lineno in range(start, len(lines)):
        line = lines[lineno].strip()
        if not line.startswith("|"):
            if in_table:
                break
            continue
        cells = [c.strip() for c in _CELL_SPLIT_RE.split(line.strip("|"))]
        if not in_table:
            lowered = [c.strip("`").lower() for c in cells]
            wanted = [h.lower() for h in header_cells]
            if lowered[: len(wanted)] == wanted:
                in_table = True
            continue
        if set("".join(cells)) <= {"-", " ", ":"}:
            continue  # separator row
        rows.append((lineno + 1, [c.strip("`") for c in cells]))
    return rows


def parse_protocol_error_table(protocol_md: Path) -> Dict[str, Tuple[str, int]]:
    """``code -> (constant, lineno)`` from PROTOCOL.md's error table."""
    lines = protocol_md.read_text(encoding="utf-8").splitlines()
    out: Dict[str, Tuple[str, int]] = {}
    for lineno, cells in _table_rows(lines, ["Code", "Constant"]):
        if len(cells) >= 2:
            out[cells[0]] = (cells[1], lineno)
    return out


def expand_metric_cell(token: str) -> List[str]:
    """Expand catalogue shorthand to bare metric names.

    ``wal_appended_{records,bytes}_total`` -> two names;
    ``request_seconds{op=…}`` and ``request_errors_total{op,code}`` ->
    label group stripped.  A brace group is a name expansion only when it
    has a comma, no ``=``, and is followed by further name characters —
    a trailing group is always a label set.
    """

    def expand(text: str) -> List[str]:
        for match in re.finditer(r"\{([^{}]*)\}", text):
            inner = match.group(1)
            tail = text[match.end() : match.end() + 1]
            if "," in inner and "=" not in inner and (tail.isalnum() or tail == "_"):
                return [
                    name
                    for part in inner.split(",")
                    for name in expand(
                        text[: match.start()] + part + text[match.end() :]
                    )
                ]
        return [text]

    names = []
    for candidate in expand(token):
        candidate = re.sub(r"\{[^{}]*\}", "", candidate)
        if re.fullmatch(r"[a-z][a-z0-9_]*", candidate):
            names.append(candidate)
    return names


def parse_metrics_catalogue(operations_md: Path) -> Dict[str, int]:
    """Fully-prefixed metric name -> lineno from OPERATIONS.md §3.

    The table lists names with the ``repro_`` prefix stripped (the
    ``process_*`` and ``chaos_*`` families are registered unprefixed and
    appear verbatim).
    """
    lines = operations_md.read_text(encoding="utf-8").splitlines()
    start = next(
        (
            i
            for i, line in enumerate(lines)
            if line.startswith("##") and "metrics catalogue" in line.lower()
        ),
        0,
    )
    out: Dict[str, int] = {}
    for lineno, cells in _table_rows(lines, ["Layer", "Metrics"], start=start):
        if len(cells) < 2:
            continue
        for token in re.findall(r"`([^`]+)`", lines[lineno - 1]):
            for name in expand_metric_cell(token):
                if not name.startswith(("process_", "chaos_")):
                    name = f"repro_{name}"
                out.setdefault(name, lineno)
    return out


# --------------------------------------------------------------------- #
# Checks
# --------------------------------------------------------------------- #
def check_error_registry(src_root: Path) -> List[Finding]:
    """Server error map values must exist in the ``E_*`` registry."""
    framing = _load(src_root, _FRAMING)
    server = _load(src_root, _SERVER)
    if framing is None:
        return [_missing(RULE_ERRORS, src_root, _FRAMING)]
    if server is None:
        return [_missing(RULE_ERRORS, src_root, _SERVER)]
    registry = module_constants(framing.tree, "E_")
    findings: List[Finding] = []
    if not registry:
        findings.append(
            Finding(RULE_ERRORS, framing.relpath, 1, "no E_* constants found")
        )
        return findings
    error_map = dict_value_names(_find_assignment(server.tree, "_ERROR_CODE_BY_TYPE"))
    if not error_map:
        findings.append(
            Finding(
                RULE_ERRORS,
                server.relpath,
                1,
                "_ERROR_CODE_BY_TYPE dict literal not found",
            )
        )
    for exc_type, constant in error_map.items():
        if constant not in registry:
            findings.append(
                Finding(
                    RULE_ERRORS,
                    server.relpath,
                    1,
                    f"_ERROR_CODE_BY_TYPE[{exc_type!r}] uses {constant},"
                    f" not in framing.py's E_* registry",
                )
            )
    return findings


def check_protocol_error_table(src_root: Path, protocol_md: Path) -> List[Finding]:
    """PROTOCOL.md's error table must mirror the ``E_*`` registry exactly."""
    framing = _load(src_root, _FRAMING)
    if framing is None:
        return [_missing(RULE_ERRORS, src_root, _FRAMING)]
    if not protocol_md.is_file():
        return [
            Finding(RULE_ERRORS, str(protocol_md), 0, "PROTOCOL.md not found")
        ]
    registry = module_constants(framing.tree, "E_")  # name -> code
    by_code = {code: name for name, code in registry.items()}
    table = parse_protocol_error_table(protocol_md)
    doc = protocol_md.name if protocol_md.parent.name == "" else (
        f"{protocol_md.parent.name}/{protocol_md.name}"
    )
    findings: List[Finding] = []
    if not table:
        findings.append(
            Finding(RULE_ERRORS, doc, 0, "error-code table (Code|Constant) not found")
        )
        return findings
    for code, (constant, lineno) in table.items():
        if code not in by_code:
            findings.append(
                Finding(
                    RULE_ERRORS,
                    doc,
                    lineno,
                    f"documents unknown error code {code!r}",
                )
            )
        elif by_code[code] != constant:
            findings.append(
                Finding(
                    RULE_ERRORS,
                    doc,
                    lineno,
                    f"code {code!r} documented as {constant}, registry says"
                    f" {by_code[code]}",
                )
            )
    for code, name in sorted(by_code.items()):
        if code not in table:
            findings.append(
                Finding(
                    RULE_ERRORS,
                    doc,
                    0,
                    f"error code {code!r} ({name}) missing from the table",
                )
            )
    return findings


def check_op_vocabulary(src_root: Path) -> List[Finding]:
    """Dispatch ops, idempotency partition, client helpers, metric labels."""
    service = _load(src_root, _SERVICE)
    framing = _load(src_root, _FRAMING)
    server = _load(src_root, _SERVER)
    client = _load(src_root, _CLIENT)
    for relpath, source in (
        (_SERVICE, service),
        (_FRAMING, framing),
        (_SERVER, server),
        (_CLIENT, client),
    ):
        if source is None:
            return [_missing(RULE_OPS, src_root, relpath)]

    findings: List[Finding] = []
    dispatch = extract_dispatch_ops(service)
    if not dispatch:
        return [
            Finding(RULE_OPS, service.relpath, 1, "_dispatch op vocabulary not found")
        ]

    idempotent = string_collection(_find_assignment(framing.tree, "IDEMPOTENT_OPS"))
    nonidempotent = string_collection(
        _find_assignment(framing.tree, "NONIDEMPOTENT_OPS")
    )
    if idempotent is None or nonidempotent is None:
        findings.append(
            Finding(
                RULE_OPS,
                framing.relpath,
                1,
                "IDEMPOTENT_OPS / NONIDEMPOTENT_OPS partition not found in"
                " framing.py (the wire contract owns idempotency)",
            )
        )
        idempotent, nonidempotent = set(), set()
    else:
        overlap = idempotent & nonidempotent
        if overlap:
            findings.append(
                Finding(
                    RULE_OPS,
                    framing.relpath,
                    1,
                    f"ops {sorted(overlap)} are both idempotent and"
                    f" non-idempotent — double-apply hazard",
                )
            )
        unclassified = dispatch - idempotent - nonidempotent
        if unclassified:
            findings.append(
                Finding(
                    RULE_OPS,
                    framing.relpath,
                    1,
                    f"dispatched ops {sorted(unclassified)} not classified in"
                    f" the IDEMPOTENT_OPS/NONIDEMPOTENT_OPS partition",
                )
            )
        phantom = (idempotent | nonidempotent) - dispatch
        if phantom:
            findings.append(
                Finding(
                    RULE_OPS,
                    framing.relpath,
                    1,
                    f"classified ops {sorted(phantom)} are never dispatched",
                )
            )

    # The client's auto-retry set must *be* the wire-contract set, not a
    # private copy that can drift (the drift is the double-apply bug).
    client_retry = string_collection(
        _find_assignment(client.tree, "_IDEMPOTENT_OPS")
    )
    if client_retry is not None and idempotent and client_retry != idempotent:
        findings.append(
            Finding(
                RULE_OPS,
                client.relpath,
                1,
                f"client auto-retry set diverges from framing.IDEMPOTENT_OPS:"
                f" {sorted(client_retry ^ idempotent)}",
            )
        )

    transport_ops = (
        string_collection(_find_assignment(server.tree, "_TRANSPORT_OPS")) or set()
    )
    unknown = extract_request_ops(client) - dispatch - transport_ops
    if unknown:
        findings.append(
            Finding(
                RULE_OPS,
                client.relpath,
                1,
                f"client sends ops the server never dispatches: {sorted(unknown)}",
            )
        )

    metric_ops = string_collection(_find_assignment(server.tree, "_METRIC_OPS"))
    if metric_ops is not None:
        expected = dispatch | {"batch", "other"}
        if metric_ops != expected:
            findings.append(
                Finding(
                    RULE_OPS,
                    server.relpath,
                    1,
                    f"_METRIC_OPS label vocabulary != dispatch ops + batch/other"
                    f" (diff: {sorted(metric_ops ^ expected)}) — per-op"
                    f" latency for the missing ops folds into 'other'",
                )
            )
    return findings


def check_failpoint_registry(
    src_root: Path, sources: Sequence[SourceFile]
) -> List[Finding]:
    """CATALOGUE keys and compiled fire sites must match both ways."""
    failpoints = _load(src_root, _FAILPOINTS)
    if failpoints is None:
        return [_missing(RULE_FAILPOINTS, src_root, _FAILPOINTS)]
    catalogue = dict_literal_keys(_find_assignment(failpoints.tree, "CATALOGUE"))
    if not catalogue:
        return [
            Finding(
                RULE_FAILPOINTS,
                failpoints.relpath,
                1,
                "CATALOGUE dict literal not found",
            )
        ]
    findings: List[Finding] = []
    fired: Set[str] = set()
    for name, relpath, lineno in extract_fire_sites(sources):
        fired.add(name)
        if name not in catalogue:
            findings.append(
                Finding(
                    RULE_FAILPOINTS,
                    relpath,
                    lineno,
                    f"fires unknown failpoint {name!r} (not in CATALOGUE)",
                )
            )
    for name in sorted(catalogue - fired):
        findings.append(
            Finding(
                RULE_FAILPOINTS,
                failpoints.relpath,
                1,
                f"catalogued failpoint {name!r} has no compiled fire() site",
            )
        )
    return findings


def check_metrics_catalogue(
    src_root: Path,
    operations_md: Path,
    sources: Optional[Sequence[SourceFile]] = None,
) -> List[Finding]:
    """Registered metric names vs the OPERATIONS.md catalogue, both ways."""
    if sources is None:
        from repro_lint.model import load_tree

        sources = load_tree(src_root)
    if not operations_md.is_file():
        return [
            Finding(RULE_METRICS_DOC, str(operations_md), 0, "OPERATIONS.md not found")
        ]
    registered = extract_registered_metrics(sources)
    documented = parse_metrics_catalogue(operations_md)
    doc = f"{operations_md.parent.name}/{operations_md.name}"
    findings: List[Finding] = []
    if not documented:
        findings.append(
            Finding(
                RULE_METRICS_DOC, doc, 0, "metrics catalogue table not found"
            )
        )
        return findings
    for name, (relpath, lineno) in sorted(registered.items()):
        if name not in documented:
            findings.append(
                Finding(
                    RULE_METRICS_DOC,
                    relpath,
                    lineno,
                    f"metric {name!r} is registered but missing from the"
                    f" OPERATIONS.md catalogue",
                )
            )
    for name, lineno in sorted(documented.items()):
        if name not in registered:
            findings.append(
                Finding(
                    RULE_METRICS_DOC,
                    doc,
                    lineno,
                    f"catalogue documents {name!r} but nothing registers it",
                )
            )
    return findings


def run_all(
    src_root: Path,
    docs_root: Optional[Path],
    sources: Sequence[SourceFile],
) -> List[Finding]:
    """Every contract check; doc-backed ones skip when docs_root is None."""
    findings: List[Finding] = []
    findings.extend(check_error_registry(src_root))
    findings.extend(check_op_vocabulary(src_root))
    findings.extend(check_failpoint_registry(src_root, sources))
    if docs_root is not None:
        findings.extend(
            check_protocol_error_table(src_root, docs_root / "PROTOCOL.md")
        )
        findings.extend(
            check_metrics_catalogue(src_root, docs_root / "OPERATIONS.md", sources)
        )
    return findings
