"""Unit tests for the utility helpers (timing, validation, rng, logging)."""

import logging
import time

import numpy as np
import pytest

from repro.utils.log import enable_verbose, get_logger
from repro.utils.rng import make_rng
from repro.utils.timing import StageTimes, Timer, timed
from repro.utils.validation import (
    ValidationError,
    check_array_int,
    check_positive_int,
    check_s_value,
)
from repro.utils.validation import check_s_values


class TestTimer:
    def test_start_stop(self):
        t = Timer()
        t.start()
        assert t.running
        elapsed = t.stop()
        assert elapsed >= 0.0
        assert not t.running

    def test_stop_before_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_timed_context_manager(self):
        with timed() as t:
            time.sleep(0.001)
        assert t.elapsed >= 0.001


class TestStageTimes:
    def test_accumulation(self):
        times = StageTimes()
        times.add("a", 1.0)
        times.add("a", 0.5)
        times.add("b", 2.0)
        assert times.get("a") == pytest.approx(1.5)
        assert times.total == pytest.approx(3.5)
        assert times.get("missing", -1.0) == -1.0

    def test_stage_context_manager(self):
        times = StageTimes()
        with times.stage("work"):
            time.sleep(0.001)
        assert times.get("work") >= 0.001

    def test_explicit_total_overrides_sum(self):
        times = StageTimes()
        times.add("a", 1.0)
        times.add("total", 9.0)
        assert times.total == 9.0

    def test_merge(self):
        a = StageTimes({"x": 1.0})
        b = StageTimes({"x": 2.0, "y": 3.0})
        a.merge(b)
        assert a.get("x") == 3.0 and a.get("y") == 3.0

    def test_as_dict_copies(self):
        times = StageTimes({"x": 1.0})
        d = times.as_dict()
        d["x"] = 99.0
        assert times.get("x") == 1.0


class TestValidation:
    def test_check_positive_int(self):
        assert check_positive_int(5, "n") == 5
        assert check_positive_int(np.int64(2), "n") == 2
        with pytest.raises(ValidationError):
            check_positive_int(0, "n")
        with pytest.raises(ValidationError):
            check_positive_int(True, "n")
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "n")
        assert check_positive_int(0, "n", minimum=0) == 0

    def test_check_s_value(self):
        assert check_s_value(3) == 3
        with pytest.raises(ValidationError):
            check_s_value(0)
        with pytest.raises(ValidationError):
            check_s_value("two")

    def test_check_s_values(self):
        assert check_s_values([3, 1, 2]) == [1, 2, 3]
        with pytest.raises(ValidationError):
            check_s_values([])

    def test_check_array_int(self):
        out = check_array_int([1, 2, 3], "x")
        assert out.dtype == np.int64
        out = check_array_int(np.array([1.0, 2.0]), "x")
        assert out.tolist() == [1, 2]
        with pytest.raises(ValidationError):
            check_array_int(np.array([1.5]), "x")
        with pytest.raises(ValidationError):
            check_array_int(np.zeros((2, 2)), "x")


class TestRng:
    def test_seed_reproducibility(self):
        assert (
            make_rng(3).integers(0, 100, 5).tolist()
            == make_rng(3).integers(0, 100, 5).tolist()
        )

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("core").name == "repro.core"

    def test_enable_verbose_idempotent(self):
        logger = enable_verbose(logging.DEBUG)
        handlers_before = len(logger.handlers)
        enable_verbose(logging.DEBUG)
        assert len(logger.handlers) == handlers_before
