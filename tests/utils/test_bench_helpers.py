"""Unit tests for the shared benchmark harness helpers (repro.benchmarks)."""

import pytest

from repro.benchmarks.harness import (
    scaling_series,
    speedup_table,
    stage_breakdown,
    time_callable,
)
from repro.benchmarks.reporting import (
    format_series,
    format_speedups,
    format_table,
    print_experiment_header,
)
from repro.utils.timing import StageTimes


class TestHarness:
    def test_time_callable_returns_result_and_time(self):
        seconds, result = time_callable(lambda: sum(range(1000)), repeats=3)
        assert result == sum(range(1000))
        assert seconds >= 0.0

    def test_stage_breakdown(self):
        times = StageTimes({"preprocessing": 0.1, "s_overlap": 0.6, "squeeze": 0.05})
        out = stage_breakdown(times, ["preprocessing", "s_overlap", "missing"])
        assert out["preprocessing"] == pytest.approx(0.1)
        assert out["missing"] == 0.0
        assert out["total"] == pytest.approx(0.75)

    def test_speedup_table(self):
        speedups = speedup_table({"1CN": 2.0, "2BA": 0.5, "zero": 0.0}, baseline="1CN")
        assert speedups["1CN"] == pytest.approx(1.0)
        assert speedups["2BA"] == pytest.approx(4.0)
        assert speedups["zero"] == float("inf")

    def test_scaling_series(self):
        series = scaling_series([1, 2, 4], run=lambda p: 1.0 / p)
        assert series == [(1, 1.0), (2, 0.5), (4, 0.25)]


class TestReporting:
    def test_format_table_alignment_and_floats(self):
        table = format_table(["name", "value"], [["a", 1.23456], ["long-name", 2]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert "1.2346" in table
        assert "long-name" in table
        # Header, separator and two data rows.
        assert len(lines) == 4

    def test_format_series_from_mapping_and_pairs(self):
        from_mapping = format_series({1: 0.5, 2: 0.25}, x_label="s", y_label="value")
        from_pairs = format_series([(1, 0.5), (2, 0.25)], x_label="s", y_label="value")
        assert from_mapping == from_pairs
        assert "s" in from_mapping.splitlines()[0]

    def test_format_speedups_sorted_descending(self):
        table = format_speedups({"slow": 1.0, "fast": 8.0, "mid": 3.0}, baseline="slow")
        rows = table.splitlines()[2:]
        assert rows[0].startswith("fast")
        assert rows[-1].startswith("slow")

    def test_print_experiment_header(self, capsys):
        print_experiment_header("Table I", "per-stage runtime")
        out = capsys.readouterr().out
        assert "Table I" in out and "per-stage runtime" in out
