"""Unit tests for the DOT / ASCII visualisation helpers."""

from repro.core.dispatch import s_line_graph
from repro.viz import (
    ascii_bar_chart,
    degree_histogram_ascii,
    hypergraph_to_dot,
    slinegraph_to_dot,
)


class TestDotExport:
    def test_slinegraph_dot_contains_nodes_and_edges(self, paper_example):
        graph = s_line_graph(paper_example, 2)
        dot = slinegraph_to_dot(graph, h=paper_example, name="fig2-s2")
        assert dot.startswith('graph "fig2-s2" {')
        assert dot.rstrip().endswith("}")
        # Three edges with their overlap labels, node labels from the hypergraph.
        assert dot.count(" -- ") == 3
        assert 'label="1"' in dot and 'label="3"' in dot
        assert "penwidth=" in dot

    def test_slinegraph_dot_without_hypergraph(self, paper_example):
        graph = s_line_graph(paper_example, 1)
        dot = slinegraph_to_dot(graph)
        assert dot.count(" -- ") == 4

    def test_hypergraph_dot_bipartite(self, paper_example):
        dot = hypergraph_to_dot(paper_example)
        assert dot.count(" -- ") == paper_example.num_incidences
        assert "shape=box" in dot and "shape=circle" in dot


class TestAsciiCharts:
    def test_bar_chart_basic(self):
        chart = ascii_bar_chart({"a": 2.0, "b": 4.0}, width=10, title="demo")
        lines = chart.splitlines()
        assert lines[0] == "demo"
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10

    def test_bar_chart_log_scale(self):
        chart = ascii_bar_chart({1: 10.0, 2: 1000.0}, width=30, log_scale=True)
        first, second = chart.splitlines()
        # Log scale compresses the ratio: the smaller bar is more than 1/100th.
        assert first.count("#") > second.count("#") / 10

    def test_empty_series(self):
        assert ascii_bar_chart({}, title="nothing") == "nothing"

    def test_degree_histogram(self):
        out = degree_histogram_ascii([1, 1, 2, 3, 10, 10, 10], bins=3, title="degrees")
        assert out.splitlines()[0] == "degrees"
        assert "[" in out and "#" in out

    def test_degree_histogram_empty(self):
        assert degree_histogram_ascii([], title="t") == "t"
