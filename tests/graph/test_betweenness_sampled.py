"""Unit tests for the sampled (approximate) betweenness estimator."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.betweenness import betweenness_centrality, betweenness_centrality_sampled
from repro.graph.conversion import from_networkx
from repro.utils.validation import ValidationError


def nx_to_graph(nx_graph):
    return from_networkx(nx.convert_node_labels_to_integers(nx_graph))


class TestSampledBetweenness:
    def test_full_sample_equals_exact(self):
        g = nx_to_graph(nx.karate_club_graph())
        exact = betweenness_centrality(g, normalized=True)
        sampled = betweenness_centrality_sampled(
            g, num_sources=g.num_vertices, sources=range(g.num_vertices)
        )
        assert np.allclose(sampled, exact, atol=1e-9)

    def test_unnormalized_full_sample(self):
        g = nx_to_graph(nx.path_graph(9))
        exact = betweenness_centrality(g, normalized=False)
        sampled = betweenness_centrality_sampled(
            g, num_sources=g.num_vertices, normalized=False, sources=range(g.num_vertices)
        )
        assert np.allclose(sampled, exact, atol=1e-9)

    def test_partial_sample_close_on_star(self):
        # On a star the estimate is exact for any sample containing a leaf.
        g = nx_to_graph(nx.star_graph(20))
        exact = betweenness_centrality(g)
        sampled = betweenness_centrality_sampled(g, num_sources=10, seed=0)
        assert np.argmax(sampled) == np.argmax(exact) == 0

    def test_partial_sample_reasonable_on_barbell(self):
        g = nx_to_graph(nx.barbell_graph(8, 4))
        exact = betweenness_centrality(g)
        sampled = betweenness_centrality_sampled(g, num_sources=12, seed=1)
        # The bridge vertices must still dominate the ranking.
        top_exact = set(np.argsort(exact)[-4:].tolist())
        top_sampled = set(np.argsort(sampled)[-4:].tolist())
        assert len(top_exact & top_sampled) >= 3

    def test_deterministic_with_seed(self):
        g = nx_to_graph(nx.karate_club_graph())
        a = betweenness_centrality_sampled(g, num_sources=5, seed=42)
        b = betweenness_centrality_sampled(g, num_sources=5, seed=42)
        assert np.array_equal(a, b)

    def test_validation(self):
        g = nx_to_graph(nx.path_graph(4))
        with pytest.raises(ValidationError):
            betweenness_centrality_sampled(g, num_sources=0)
        with pytest.raises(ValidationError):
            betweenness_centrality_sampled(g, num_sources=2, sources=[])
        with pytest.raises(ValidationError):
            betweenness_centrality_sampled(g, num_sources=2, sources=[99])

    def test_empty_graph(self):
        from repro.graph.graph import Graph

        g = Graph.from_edge_list(0, np.empty((0, 2), dtype=np.int64))
        assert betweenness_centrality_sampled(g, num_sources=3).size == 0
