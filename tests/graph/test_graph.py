"""Unit tests for the CSR Graph type."""

import numpy as np
import pytest
from scipy import sparse

from repro.graph.graph import Graph
from repro.utils.validation import ValidationError


def triangle_plus_isolated():
    """Triangle 0-1-2 plus isolated vertex 3."""
    return Graph.from_edge_list(
        4, np.array([[0, 1], [1, 2], [0, 2]]), np.array([1.0, 2.0, 3.0])
    )


class TestConstruction:
    def test_from_edge_list(self):
        g = triangle_plus_isolated()
        assert g.num_vertices == 4
        assert g.num_edges == 3
        assert g.degree(0) == 2
        assert g.degree(3) == 0
        assert sorted(g.neighbors(1).tolist()) == [0, 2]

    def test_duplicate_edges_collapsed(self):
        g = Graph.from_edge_list(3, np.array([[0, 1], [1, 0]]))
        assert g.num_edges == 1

    def test_empty_graph(self):
        g = Graph.from_edge_list(5, np.empty((0, 2), dtype=np.int64))
        assert g.num_edges == 0
        assert g.degrees().tolist() == [0] * 5

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            Graph.from_edge_list(3, np.array([[1, 1]]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            Graph.from_edge_list(2, np.array([[0, 5]]))

    def test_weight_length_mismatch(self):
        with pytest.raises(ValidationError):
            Graph.from_edge_list(3, np.array([[0, 1]]), np.array([1.0, 2.0]))

    def test_from_scipy_drops_diagonal(self):
        adj = sparse.csr_matrix(np.array([[1.0, 2.0], [2.0, 0.0]]))
        g = Graph.from_scipy(adj)
        assert g.num_edges == 1
        assert g.neighbor_weights(0).tolist() == [2.0]

    def test_from_scipy_rejects_non_square(self):
        with pytest.raises(ValidationError):
            Graph.from_scipy(sparse.csr_matrix((2, 3)))


class TestAccess:
    def test_edges_iteration(self):
        g = triangle_plus_isolated()
        edges = {(u, v): w for u, v, w in g.edges()}
        assert edges == {(0, 1): 1.0, (0, 2): 3.0, (1, 2): 2.0}

    def test_has_edge(self):
        g = triangle_plus_isolated()
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 3)

    def test_neighbors_out_of_range(self):
        g = triangle_plus_isolated()
        with pytest.raises(IndexError):
            g.neighbors(10)

    def test_adjacency_matrix_symmetric(self):
        g = triangle_plus_isolated()
        A = g.adjacency_matrix().toarray()
        assert np.array_equal(A, A.T)
        assert A[0, 2] == 3.0
        B = g.adjacency_matrix(weighted=False).toarray()
        assert B[0, 2] == 1.0


class TestSubgraph:
    def test_induced_subgraph(self):
        g = triangle_plus_isolated()
        sub, kept = g.subgraph([0, 2, 3])
        assert kept.tolist() == [0, 2, 3]
        assert sub.num_vertices == 3
        assert sub.num_edges == 1  # only edge 0-2 survives

    def test_subgraph_out_of_range(self):
        g = triangle_plus_isolated()
        with pytest.raises(ValidationError):
            g.subgraph([99])

    def test_metadata_independent(self):
        g = triangle_plus_isolated()
        g.metadata["s"] = 7
        assert g.metadata["s"] == 7
