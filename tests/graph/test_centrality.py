"""Unit tests for betweenness centrality and PageRank against networkx oracles."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.betweenness import betweenness_centrality
from repro.graph.conversion import from_networkx
from repro.graph.graph import Graph
from repro.graph.pagerank import pagerank, rank_order, score_percentiles
from repro.utils.validation import ValidationError


def nx_to_graph(nx_graph):
    return from_networkx(nx.convert_node_labels_to_integers(nx_graph))


ORACLE_GRAPHS = {
    "path": nx.path_graph(7),
    "star": nx.star_graph(6),
    "cycle": nx.cycle_graph(8),
    "karate": nx.karate_club_graph(),
    "barbell": nx.barbell_graph(4, 2),
    "disconnected": nx.disjoint_union(nx.path_graph(4), nx.cycle_graph(5)),
}


class TestBetweenness:
    @pytest.mark.parametrize("name", sorted(ORACLE_GRAPHS))
    @pytest.mark.parametrize("normalized", [True, False])
    def test_matches_networkx(self, name, normalized):
        nx_graph = ORACLE_GRAPHS[name]
        ours = betweenness_centrality(nx_to_graph(nx_graph), normalized=normalized)
        theirs = nx.betweenness_centrality(
            nx.convert_node_labels_to_integers(nx_graph), normalized=normalized
        )
        for v, expected in theirs.items():
            assert ours[v] == pytest.approx(expected, abs=1e-9)

    def test_endpoints_variant_matches_networkx(self):
        nx_graph = nx.karate_club_graph()
        ours = betweenness_centrality(nx_to_graph(nx_graph), endpoints=True)
        theirs = nx.betweenness_centrality(nx_graph, endpoints=True)
        for v, expected in theirs.items():
            assert ours[v] == pytest.approx(expected, abs=1e-9)

    def test_star_center_dominates(self):
        g = nx_to_graph(nx.star_graph(5))
        scores = betweenness_centrality(g)
        assert np.argmax(scores) == 0
        assert scores[1:].max() == 0.0


class TestPageRank:
    @pytest.mark.parametrize("name", sorted(ORACLE_GRAPHS))
    def test_matches_networkx(self, name):
        nx_graph = nx.convert_node_labels_to_integers(ORACLE_GRAPHS[name])
        ours = pagerank(nx_to_graph(nx_graph), damping=0.85)
        theirs = nx.pagerank(nx_graph, alpha=0.85, tol=1e-12, max_iter=1000, weight=None)
        for v, expected in theirs.items():
            assert ours[v] == pytest.approx(expected, abs=1e-6)

    def test_weighted_pagerank_matches_networkx(self):
        nx_graph = nx.Graph()
        nx_graph.add_weighted_edges_from([(0, 1, 3.0), (1, 2, 1.0), (0, 2, 0.5)])
        ours = pagerank(nx_to_graph(nx_graph), weighted=True)
        theirs = nx.pagerank(nx_graph, alpha=0.85, tol=1e-12, max_iter=1000, weight="weight")
        for v, expected in theirs.items():
            assert ours[v] == pytest.approx(expected, abs=1e-6)

    def test_scores_sum_to_one(self):
        g = nx_to_graph(nx.karate_club_graph())
        assert pagerank(g).sum() == pytest.approx(1.0)

    def test_graph_with_isolated_vertices(self):
        g = Graph.from_edge_list(4, np.array([[0, 1]]))
        scores = pagerank(g)
        assert scores.sum() == pytest.approx(1.0)
        assert scores[2] == pytest.approx(scores[3])

    def test_invalid_damping(self):
        g = Graph.from_edge_list(2, np.array([[0, 1]]))
        with pytest.raises(ValidationError):
            pagerank(g, damping=1.5)

    def test_personalization(self):
        g = nx_to_graph(nx.path_graph(4))
        p = np.array([1.0, 0.0, 0.0, 0.0])
        ours = pagerank(g, personalization=p)
        theirs = nx.pagerank(
            nx.path_graph(4),
            alpha=0.85,
            personalization={0: 1.0, 1: 0, 2: 0, 3: 0},
            tol=1e-12,
            max_iter=1000,
        )
        for v, expected in theirs.items():
            assert ours[v] == pytest.approx(expected, abs=1e-6)

    def test_personalization_validation(self):
        g = Graph.from_edge_list(2, np.array([[0, 1]]))
        with pytest.raises(ValidationError):
            pagerank(g, personalization=np.array([0.0, 0.0]))
        with pytest.raises(ValidationError):
            pagerank(g, personalization=np.array([1.0]))


class TestRankingHelpers:
    def test_rank_order(self):
        scores = np.array([0.1, 0.5, 0.3])
        assert rank_order(scores).tolist() == [1, 2, 0]
        assert rank_order(scores, descending=False).tolist() == [0, 2, 1]

    def test_score_percentiles_top_is_100(self):
        pct = score_percentiles(np.array([0.1, 0.9, 0.5, 0.9]))
        assert pct[1] == pytest.approx(100.0)
        assert pct[3] == pytest.approx(100.0)
        assert pct[0] == pytest.approx(25.0)

    def test_score_percentiles_edge_cases(self):
        assert score_percentiles(np.array([])).size == 0
        assert score_percentiles(np.array([3.0])).tolist() == [100.0]
