"""Unit tests for Graph <-> networkx conversion."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.conversion import from_networkx, to_networkx
from repro.graph.graph import Graph
from repro.utils.validation import ValidationError


class TestConversion:
    def test_roundtrip(self):
        g = Graph.from_edge_list(4, np.array([[0, 1], [1, 2]]), np.array([2.0, 5.0]))
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == 4
        assert nxg[1][2]["weight"] == 5.0
        back = from_networkx(nxg)
        assert back.num_edges == g.num_edges
        assert back.num_vertices == g.num_vertices
        assert dict((min(u, v), max(u, v)) for u, v, _ in back.edges()) == dict(
            (min(u, v), max(u, v)) for u, v, _ in g.edges()
        )

    def test_from_networkx_default_weight(self):
        nxg = nx.path_graph(3)
        g = from_networkx(nxg)
        assert g.neighbor_weights(0).tolist() == [1.0]

    def test_from_networkx_requires_contiguous_ints(self):
        nxg = nx.Graph()
        nxg.add_edge("a", "b")
        with pytest.raises(ValidationError):
            from_networkx(nxg)

    def test_from_networkx_skips_self_loops(self):
        nxg = nx.Graph()
        nxg.add_nodes_from(range(2))
        nxg.add_edge(0, 0)
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.num_edges == 1
