"""Unit tests for the disjoint-set structure and union-find connected components."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.connected_components import connected_components
from repro.graph.conversion import from_networkx
from repro.graph.graph import Graph
from repro.graph.union_find import (
    DisjointSet,
    union_find_components,
    union_find_components_from_edges,
)
from repro.utils.validation import ValidationError


class TestDisjointSet:
    def test_initial_state(self):
        ds = DisjointSet(5)
        assert ds.num_elements == 5
        assert ds.num_sets == 5
        assert ds.find(3) == 3

    def test_union_and_find(self):
        ds = DisjointSet(6)
        assert ds.union(0, 1)
        assert ds.union(1, 2)
        assert not ds.union(0, 2)  # already merged
        assert ds.same_set(0, 2)
        assert not ds.same_set(0, 5)
        assert ds.num_sets == 4

    def test_labels_compact(self):
        ds = DisjointSet(5)
        ds.union(0, 4)
        ds.union(1, 3)
        labels = ds.labels()
        assert labels[0] == labels[4]
        assert labels[1] == labels[3]
        assert len(set(labels.tolist())) == 3
        assert labels.max() == 2

    def test_out_of_range(self):
        ds = DisjointSet(3)
        with pytest.raises(IndexError):
            ds.find(7)

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            DisjointSet(-1)

    def test_empty_universe(self):
        ds = DisjointSet(0)
        assert ds.labels().size == 0
        assert ds.num_sets == 0


class TestUnionFindComponents:
    def test_matches_bfs_components(self):
        nx_graph = nx.convert_node_labels_to_integers(
            nx.disjoint_union(nx.karate_club_graph(), nx.cycle_graph(7))
        )
        g = from_networkx(nx_graph)
        a = connected_components(g)
        b = union_find_components(g)
        assert np.array_equal(a[:, None] == a[None, :], b[:, None] == b[None, :])

    def test_from_edge_iterable(self):
        labels = union_find_components_from_edges(5, [(0, 1), (3, 4)])
        assert labels[0] == labels[1]
        assert labels[3] == labels[4]
        assert labels[2] not in (labels[0], labels[3])

    def test_empty_graph(self):
        g = Graph.from_edge_list(4, np.empty((0, 2), dtype=np.int64))
        assert union_find_components(g).tolist() == [0, 1, 2, 3]
