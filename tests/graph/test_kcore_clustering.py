"""Unit tests for k-core decomposition and clustering coefficients (networkx oracles)."""

import networkx as nx
import numpy as np
import pytest

from repro.graph.clustering import (
    average_clustering,
    clustering_coefficients,
    total_triangles,
    transitivity,
    triangle_counts,
)
from repro.graph.conversion import from_networkx
from repro.graph.graph import Graph
from repro.graph.kcore import core_numbers, degeneracy, k_core_subgraph, k_core_vertices


def nx_to_graph(nx_graph):
    return from_networkx(nx.convert_node_labels_to_integers(nx_graph))


ORACLES = {
    "karate": nx.karate_club_graph(),
    "barbell": nx.barbell_graph(5, 3),
    "path": nx.path_graph(8),
    "complete": nx.complete_graph(6),
    "disconnected": nx.disjoint_union(nx.complete_graph(4), nx.cycle_graph(5)),
}


class TestKCore:
    @pytest.mark.parametrize("name", sorted(ORACLES))
    def test_core_numbers_match_networkx(self, name):
        nx_graph = nx.convert_node_labels_to_integers(ORACLES[name])
        ours = core_numbers(nx_to_graph(nx_graph))
        theirs = nx.core_number(nx_graph)
        for v, expected in theirs.items():
            assert ours[v] == expected

    def test_k_core_vertices_match_networkx(self):
        nx_graph = nx.karate_club_graph()
        ours = set(k_core_vertices(nx_to_graph(nx_graph), 3).tolist())
        theirs = set(nx.k_core(nx_graph, 3).nodes())
        assert ours == theirs

    def test_k_core_subgraph_min_degree(self):
        g = nx_to_graph(nx.karate_club_graph())
        sub, kept = k_core_subgraph(g, 4)
        assert kept.size == sub.num_vertices
        if sub.num_vertices:
            assert sub.degrees().min() >= 4

    def test_degeneracy(self):
        assert degeneracy(nx_to_graph(nx.complete_graph(5))) == 4
        assert degeneracy(nx_to_graph(nx.path_graph(6))) == 1
        assert degeneracy(Graph.from_edge_list(3, np.empty((0, 2), dtype=np.int64))) == 0

    def test_empty_graph(self):
        g = Graph.from_edge_list(0, np.empty((0, 2), dtype=np.int64))
        assert core_numbers(g).size == 0


class TestClustering:
    @pytest.mark.parametrize("name", sorted(ORACLES))
    def test_clustering_matches_networkx(self, name):
        nx_graph = nx.convert_node_labels_to_integers(ORACLES[name])
        ours = clustering_coefficients(nx_to_graph(nx_graph))
        theirs = nx.clustering(nx_graph)
        for v, expected in theirs.items():
            assert ours[v] == pytest.approx(expected)

    @pytest.mark.parametrize("name", sorted(ORACLES))
    def test_transitivity_matches_networkx(self, name):
        nx_graph = nx.convert_node_labels_to_integers(ORACLES[name])
        assert transitivity(nx_to_graph(nx_graph)) == pytest.approx(
            nx.transitivity(nx_graph)
        )

    def test_triangle_counts_match_networkx(self):
        nx_graph = nx.karate_club_graph()
        ours = triangle_counts(nx_to_graph(nx_graph))
        theirs = nx.triangles(nx_graph)
        for v, expected in theirs.items():
            assert ours[v] == expected

    def test_total_triangles(self):
        assert total_triangles(nx_to_graph(nx.complete_graph(5))) == 10
        assert total_triangles(nx_to_graph(nx.path_graph(5))) == 0

    def test_average_clustering(self):
        assert average_clustering(nx_to_graph(nx.complete_graph(4))) == pytest.approx(1.0)
        empty = Graph.from_edge_list(0, np.empty((0, 2), dtype=np.int64))
        assert average_clustering(empty) == 0.0
