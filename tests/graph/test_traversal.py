"""Unit tests for BFS, connected components and distance measures."""

import numpy as np
import pytest

from repro.graph.bfs import bfs_distances, bfs_frontier_levels, bfs_tree
from repro.graph.connected_components import (
    component_sizes,
    components_as_lists,
    connected_components,
    label_propagation_components,
    largest_component,
)
from repro.graph.distance import (
    all_pairs_shortest_path_lengths,
    closeness_centrality,
    diameter,
    distance_between,
    eccentricity,
    harmonic_centrality,
)
from repro.graph.graph import Graph


def path_graph(n):
    edges = np.array([[i, i + 1] for i in range(n - 1)])
    return Graph.from_edge_list(n, edges)


def two_components():
    """Path 0-1-2 and edge 3-4, vertex 5 isolated."""
    return Graph.from_edge_list(6, np.array([[0, 1], [1, 2], [3, 4]]))


class TestBFS:
    def test_distances_on_path(self):
        g = path_graph(5)
        assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3, 4]
        assert bfs_distances(g, 2).tolist() == [2, 1, 0, 1, 2]

    def test_unreachable_is_minus_one(self):
        g = two_components()
        dist = bfs_distances(g, 0)
        assert dist[3] == -1 and dist[5] == -1

    def test_source_out_of_range(self):
        with pytest.raises(IndexError):
            bfs_distances(path_graph(3), 7)

    def test_tree_predecessors(self):
        g = path_graph(4)
        dist, pred = bfs_tree(g, 0)
        assert pred.tolist() == [-1, 0, 1, 2]
        assert dist.tolist() == [0, 1, 2, 3]

    def test_frontier_levels(self):
        g = path_graph(4)
        levels = bfs_frontier_levels(g, 1)
        assert [lv.tolist() for lv in levels] == [[1], [0, 2], [3]]


class TestConnectedComponents:
    def test_labels_and_sizes(self):
        g = two_components()
        labels = connected_components(g)
        assert labels.tolist() == [0, 0, 0, 1, 1, 2]
        assert component_sizes(labels).tolist() == [3, 2, 1]
        assert [c.tolist() for c in components_as_lists(labels)] == [[0, 1, 2], [3, 4], [5]]

    def test_label_propagation_matches_bfs(self):
        g = two_components()
        assert label_propagation_components(g).tolist() == connected_components(g).tolist()

    def test_label_propagation_on_random_graph(self):
        rng = np.random.default_rng(3)
        edges = rng.integers(0, 30, size=(60, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        g = Graph.from_edge_list(30, edges)
        a = connected_components(g)
        b = label_propagation_components(g)
        # The partitions must be identical (labels may differ only by naming).
        assert (a[:, None] == a[None, :]).tolist() == (b[:, None] == b[None, :]).tolist()

    def test_largest_component(self):
        g = two_components()
        assert largest_component(g).tolist() == [0, 1, 2]

    def test_empty_graph(self):
        g = Graph.from_edge_list(0, np.empty((0, 2), dtype=np.int64))
        assert connected_components(g).size == 0
        assert label_propagation_components(g).size == 0


class TestDistances:
    def test_all_pairs_on_path(self):
        g = path_graph(4)
        D = all_pairs_shortest_path_lengths(g)
        assert D[0].tolist() == [0, 1, 2, 3]
        assert D[3].tolist() == [3, 2, 1, 0]

    def test_eccentricity_and_diameter(self):
        g = path_graph(5)
        assert eccentricity(g).tolist() == [4, 3, 2, 3, 4]
        assert diameter(g) == 4

    def test_eccentricity_per_component(self):
        g = two_components()
        ecc = eccentricity(g)
        assert ecc[5] == 0
        assert ecc[3] == 1

    def test_distance_between(self):
        g = two_components()
        assert distance_between(g, 0, 2) == 2
        assert distance_between(g, 0, 4) == -1

    def test_closeness_matches_networkx(self):
        import networkx as nx

        g = two_components()
        ours = closeness_centrality(g)
        nx_graph = nx.from_edgelist([(0, 1), (1, 2), (3, 4)])
        nx_graph.add_node(5)  # keep the isolated vertex so n matches
        theirs = nx.closeness_centrality(nx_graph)
        for v, expected in theirs.items():
            assert ours[v] == pytest.approx(expected)

    def test_harmonic_matches_networkx(self):
        import networkx as nx

        g = path_graph(6)
        ours = harmonic_centrality(g)
        theirs = nx.harmonic_centrality(nx.path_graph(6))
        for v, expected in theirs.items():
            assert ours[v] == pytest.approx(expected)
