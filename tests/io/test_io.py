"""Unit tests for hypergraph I/O round trips."""

import numpy as np
import pytest

from repro.core.dispatch import s_line_graph
from repro.io.edgelist import (
    read_bipartite_edgelist,
    read_hyperedge_list,
    write_bipartite_edgelist,
    write_hyperedge_list,
)
from repro.io.matrixmarket import read_incidence_matrixmarket, write_incidence_matrixmarket
from repro.io.serialization import (
    load_hypergraph_npz,
    load_slinegraph_npz,
    peek_hypergraph_fingerprint,
    save_hypergraph_npz,
    save_slinegraph_npz,
)
from repro.utils.validation import ValidationError


class TestBipartiteEdgelist:
    def test_roundtrip(self, paper_example, tmp_path):
        path = tmp_path / "h.bel"
        write_bipartite_edgelist(paper_example, path)
        back = read_bipartite_edgelist(path)
        assert back.num_edges == paper_example.num_edges
        assert back.num_vertices == paper_example.num_vertices
        assert back == paper_example

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "h.bel"
        path.write_text("# comment\n% other comment\n\n0 0\n0 1\n1 1\n")
        h = read_bipartite_edgelist(path)
        assert h.num_edges == 2
        assert h.num_incidences == 3

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.bel"
        path.write_text("0\n")
        with pytest.raises(ValidationError):
            read_bipartite_edgelist(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.bel"
        path.write_text("# nothing\n")
        with pytest.raises(ValidationError):
            read_bipartite_edgelist(path)


class TestHyperedgeList:
    def test_roundtrip(self, paper_example, tmp_path):
        path = tmp_path / "h.hel"
        write_hyperedge_list(paper_example, path)
        back = read_hyperedge_list(path)
        assert back == paper_example

    def test_empty_hyperedge_line(self, tmp_path):
        path = tmp_path / "h.hel"
        path.write_text("0 1\n\n2\n")
        h = read_hyperedge_list(path)
        assert h.num_edges == 3
        assert h.edge_size(1) == 0

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "none.hel"
        path.write_text("# only a comment\n")
        with pytest.raises(ValidationError):
            read_hyperedge_list(path)


class TestMatrixMarket:
    def test_roundtrip(self, paper_example, tmp_path):
        path = tmp_path / "h.mtx"
        write_incidence_matrixmarket(paper_example, path)
        back = read_incidence_matrixmarket(path)
        assert back == paper_example


class TestNpzSerialization:
    def test_hypergraph_roundtrip_with_labels(self, paper_example, tmp_path):
        path = tmp_path / "h.npz"
        save_hypergraph_npz(paper_example, path)
        back = load_hypergraph_npz(path)
        assert back.num_edges == paper_example.num_edges
        assert back.num_incidences == paper_example.num_incidences
        assert back.vertex_names == ["a", "b", "c", "d", "e", "f"]

    def test_hypergraph_roundtrip_without_labels(self, paper_example_unlabelled, tmp_path):
        path = tmp_path / "h.npz"
        save_hypergraph_npz(paper_example_unlabelled, path)
        back = load_hypergraph_npz(path)
        assert back == paper_example_unlabelled
        assert back.edge_names is None

    def test_slinegraph_roundtrip(self, paper_example, tmp_path):
        graph = s_line_graph(paper_example, 2)
        path = tmp_path / "lg.npz"
        save_slinegraph_npz(graph, path)
        back = load_slinegraph_npz(path)
        assert back == graph
        assert back.active_vertices.tolist() == graph.active_vertices.tolist()


class TestNpzFingerprint:
    """The archive carries the structural fingerprint (store manifest guard)."""

    def test_fingerprint_stable_across_save_load(self, paper_example, tmp_path):
        path = tmp_path / "h.npz"
        save_hypergraph_npz(paper_example, path)
        back = load_hypergraph_npz(path)
        assert back.fingerprint() == paper_example.fingerprint()
        # Another full cycle through the loaded copy stays fixed.
        path2 = tmp_path / "h2.npz"
        save_hypergraph_npz(back, path2)
        assert load_hypergraph_npz(path2).fingerprint() == paper_example.fingerprint()

    def test_peek_reads_fingerprint_without_rebuilding(self, paper_example, tmp_path):
        path = tmp_path / "h.npz"
        save_hypergraph_npz(paper_example, path)
        assert peek_hypergraph_fingerprint(path) == paper_example.fingerprint()

    def test_tampered_archive_rejected(self, paper_example_unlabelled, tmp_path):
        import numpy as np

        path = tmp_path / "h.npz"
        save_hypergraph_npz(paper_example_unlabelled, path)
        with np.load(str(path), allow_pickle=False) as data:
            payload = {k: data[k] for k in data.files}
        payload["indices"] = payload["indices"].copy()
        payload["indices"][0] = (payload["indices"][0] + 1) % int(
            payload["num_vertices"][0]
        )
        np.savez_compressed(str(path), **payload)
        with pytest.raises(ValidationError, match="archive recorded"):
            load_hypergraph_npz(path)
        # The escape hatch still loads the (altered) structure.
        salvaged = load_hypergraph_npz(path, verify_fingerprint=False)
        assert salvaged.num_edges == paper_example_unlabelled.num_edges

    def test_archive_without_fingerprint_still_loads(
        self, paper_example_unlabelled, tmp_path
    ):
        import numpy as np

        path = tmp_path / "h.npz"
        save_hypergraph_npz(paper_example_unlabelled, path)
        with np.load(str(path), allow_pickle=False) as data:
            payload = {k: data[k] for k in data.files if k != "fingerprint"}
        np.savez_compressed(str(path), **payload)  # a pre-store-era archive
        assert peek_hypergraph_fingerprint(path) is None
        assert load_hypergraph_npz(path) == paper_example_unlabelled
