"""MatrixMarket incidence I/O: round trips, 1-based indexing, malformed input."""

import numpy as np
import pytest

from repro.io.matrixmarket import (
    read_incidence_matrixmarket,
    write_incidence_matrixmarket,
)


class TestRoundTrip:
    def test_paper_example(self, paper_example, tmp_path):
        path = tmp_path / "h.mtx"
        write_incidence_matrixmarket(paper_example, path)
        back = read_incidence_matrixmarket(path)
        assert back == paper_example
        assert back.fingerprint() == paper_example.fingerprint()

    def test_preserves_empty_hyperedge_column(self, tmp_path):
        from repro.hypergraph.builders import hypergraph_from_edge_lists

        h = hypergraph_from_edge_lists([[0, 1], [], [1, 2]], num_vertices=3)
        path = tmp_path / "h.mtx"
        write_incidence_matrixmarket(h, path)
        back = read_incidence_matrixmarket(path)
        assert back.num_edges == 3
        assert back.edge_size(1) == 0
        assert back == h

    def test_preserves_isolated_vertex_row(self, tmp_path):
        from repro.hypergraph.builders import hypergraph_from_edge_lists

        h = hypergraph_from_edge_lists([[0, 2]], num_vertices=4)  # 1 and 3 isolated
        path = tmp_path / "h.mtx"
        write_incidence_matrixmarket(h, path)
        back = read_incidence_matrixmarket(path)
        assert back.num_vertices == 4
        assert back == h


class TestOneBasedIndexing:
    def test_coordinates_are_one_based(self, tmp_path):
        # MatrixMarket coordinate entries are 1-based: vertex 1 is row 1.
        path = tmp_path / "h.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "3 2 3\n"
            "1 1\n"
            "2 1\n"
            "3 2\n"
        )
        h = read_incidence_matrixmarket(path)
        assert h.num_vertices == 3
        assert h.num_edges == 2
        assert h.edge_members(0).tolist() == [0, 1]
        assert h.edge_members(1).tolist() == [2]

    def test_integer_dialect_accepted(self, tmp_path):
        path = tmp_path / "h.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate integer general\n"
            "2 2 2\n"
            "1 1 1\n"
            "2 2 1\n"
        )
        h = read_incidence_matrixmarket(path)
        assert h.num_edges == 2
        assert h.edge_members(0).tolist() == [0]
        assert h.edge_members(1).tolist() == [1]

    def test_on_disk_entries_written_one_based(self, paper_example, tmp_path):
        path = tmp_path / "h.mtx"
        write_incidence_matrixmarket(paper_example, path)
        lines = [
            line.split()
            for line in path.read_text().splitlines()
            if line and not line.startswith("%")
        ]
        entries = np.array(lines[1:], dtype=np.int64)  # skip the size line
        assert entries[:, :2].min() >= 1  # no 0-based coordinate leaks out


class TestMalformedInput:
    def test_bad_banner_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%NotMatrixMarket nonsense\n1 1 1\n1 1\n")
        with pytest.raises(ValueError):
            read_incidence_matrixmarket(path)

    def test_truncated_header_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate\n")
        with pytest.raises(ValueError):
            read_incidence_matrixmarket(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises((FileNotFoundError, OSError)):
            read_incidence_matrixmarket(tmp_path / "nowhere.mtx")
