"""Unit tests for JSON / setsystem interchange."""

import json

import pytest

from repro.core.dispatch import s_line_graph
from repro.io.jsonio import (
    hypergraph_from_setsystem,
    hypergraph_to_setsystem,
    load_hypergraph_json,
    load_slinegraph_json,
    save_hypergraph_json,
    save_slinegraph_json,
)
from repro.utils.validation import ValidationError


class TestSetsystem:
    def test_roundtrip_preserves_structure(self, paper_example):
        setsystem = hypergraph_to_setsystem(paper_example)
        assert setsystem == {
            "1": ["a", "b", "c"],
            "2": ["b", "c", "d"],
            "3": ["a", "b", "c", "d", "e"],
            "4": ["e", "f"],
        }
        back = hypergraph_from_setsystem(setsystem)
        assert back.num_edges == 4
        assert back.num_vertices == 6
        assert back.inc(0, 2) == 3

    def test_rejects_non_mapping(self):
        with pytest.raises(ValidationError):
            hypergraph_from_setsystem([["a", "b"]])


class TestHypergraphJson:
    def test_roundtrip(self, paper_example, tmp_path):
        path = tmp_path / "h.json"
        save_hypergraph_json(paper_example, path)
        back = load_hypergraph_json(path)
        assert back.num_edges == paper_example.num_edges
        assert back.num_incidences == paper_example.num_incidences
        assert s_line_graph(back, 2).edge_set() == s_line_graph(paper_example, 2).edge_set()

    def test_accepts_bare_setsystem(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"e1": ["x", "y"], "e2": ["y"]}))
        h = load_hypergraph_json(path)
        assert h.num_edges == 2 and h.num_vertices == 2

    def test_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else", "edges": {}}))
        with pytest.raises(ValidationError):
            load_hypergraph_json(path)

    def test_rejects_non_object(self, tmp_path):
        path = tmp_path / "array.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValidationError):
            load_hypergraph_json(path)


class TestSLineGraphJson:
    def test_roundtrip(self, paper_example, tmp_path):
        graph = s_line_graph(paper_example, 2)
        path = tmp_path / "lg.json"
        save_slinegraph_json(graph, path)
        back = load_slinegraph_json(path)
        assert back == graph
        assert back.active_vertices.tolist() == graph.active_vertices.tolist()

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "repro-hypergraph", "edges": {}}))
        with pytest.raises(ValidationError):
            load_slinegraph_json(path)
