"""Unit tests for the individual s-line-graph algorithms.

Each algorithm is checked against the paper's Figure 2 ground truth and
against a brute-force oracle on random hypergraphs; algorithm-specific
behaviour (workload counters, pruning, short-circuiting, counter policies)
is tested separately per algorithm.
"""

import numpy as np
import pytest

from repro.core.algorithms.hashmap import s_line_graph_hashmap
from repro.core.algorithms.heuristic import (
    _sorted_intersection_count,
    s_line_graph_heuristic,
)
from repro.core.algorithms.naive import s_line_graph_naive
from repro.core.algorithms.spgemm import s_line_graph_spgemm, s_line_graph_spgemm_upper
from repro.core.algorithms.vectorized import s_line_graph_vectorized
from repro.core.filtration import line_graph_from_filtration
from repro.parallel.executor import ParallelConfig
from repro.utils.validation import ValidationError

from tests.conftest import (
    PAPER_EXAMPLE_OVERLAPS,
    PAPER_EXAMPLE_SLINE_EDGES,
    brute_force_s_line_edges,
)

ALL_ALGORITHMS = {
    "naive": s_line_graph_naive,
    "heuristic": s_line_graph_heuristic,
    "hashmap": s_line_graph_hashmap,
    "vectorized": s_line_graph_vectorized,
    "spgemm": s_line_graph_spgemm,
    "spgemm_upper": s_line_graph_spgemm_upper,
}


@pytest.mark.parametrize("name,algorithm", sorted(ALL_ALGORITHMS.items()))
class TestAgainstPaperExample:
    @pytest.mark.parametrize("s", [1, 2, 3, 4])
    def test_edge_sets_match_figure2(self, paper_example, name, algorithm, s):
        result = algorithm(paper_example, s)
        assert result.graph.edge_set() == PAPER_EXAMPLE_SLINE_EDGES[s]

    def test_weights_are_exact_overlaps(self, paper_example, name, algorithm):
        result = algorithm(paper_example, 1)
        for (i, j), w in result.graph.weight_map().items():
            assert w == PAPER_EXAMPLE_OVERLAPS[(i, j)]

    def test_active_vertices_are_Es(self, paper_example, name, algorithm):
        result = algorithm(paper_example, 3)
        assert result.graph.active_vertices.tolist() == [0, 1, 2]

    def test_invalid_s_rejected(self, paper_example, name, algorithm):
        with pytest.raises(ValidationError):
            algorithm(paper_example, 0)


@pytest.mark.parametrize("name,algorithm", sorted(ALL_ALGORITHMS.items()))
@pytest.mark.parametrize("s", [1, 2, 3])
def test_matches_brute_force_on_random_hypergraph(
    small_random_hypergraph, name, algorithm, s
):
    expected = brute_force_s_line_edges(small_random_hypergraph, s)
    result = algorithm(small_random_hypergraph, s)
    assert result.graph.edge_set() == set(expected)
    assert result.graph.weight_map() == expected


@pytest.mark.parametrize("name,algorithm", sorted(ALL_ALGORITHMS.items()))
def test_empty_hypergraph_gives_empty_line_graph(empty_hypergraph, name, algorithm):
    result = algorithm(empty_hypergraph, 1)
    assert result.graph.num_edges == 0


class TestNaive:
    def test_counts_all_pairs(self, paper_example):
        result = s_line_graph_naive(paper_example, 2)
        assert result.workload.total_set_intersections() == 6  # C(4, 2)

    def test_algorithm_name(self, paper_example):
        assert s_line_graph_naive(paper_example, 1).algorithm == "naive"


class TestHeuristic:
    def test_performs_fewer_intersections_than_naive(self, community_hypergraph):
        naive = s_line_graph_naive(community_hypergraph, 2)
        heuristic = s_line_graph_heuristic(community_hypergraph, 2)
        assert (
            heuristic.workload.total_set_intersections()
            < naive.workload.total_set_intersections()
        )

    def test_degree_pruning_reduces_work(self, paper_example):
        # At s = 4, only edge 3 (size 5) survives pruning, so no intersections run.
        result = s_line_graph_heuristic(paper_example, 4)
        assert result.workload.total_set_intersections() == 0
        assert result.graph.num_edges == 0

    def test_short_circuit_truncates_weights_at_s(self, paper_example):
        result = s_line_graph_heuristic(paper_example, 2, short_circuit=True)
        assert result.graph.edge_set() == PAPER_EXAMPLE_SLINE_EDGES[2]
        assert all(w == 2 for w in result.graph.weights.tolist())

    def test_parallel_matches_serial(self, community_hypergraph):
        serial = s_line_graph_heuristic(community_hypergraph, 2)
        parallel = s_line_graph_heuristic(
            community_hypergraph,
            2,
            config=ParallelConfig(num_workers=4, strategy="cyclic", backend="thread"),
        )
        assert serial.graph.edge_set() == parallel.graph.edge_set()

    def test_sorted_intersection_count_exact(self):
        a = np.array([1, 3, 5, 7, 9])
        b = np.array([3, 4, 5, 9, 10])
        assert _sorted_intersection_count(a, b, s=1, short_circuit=False) == 3

    def test_sorted_intersection_count_short_circuit(self):
        a = np.array([1, 2, 3, 4])
        b = np.array([1, 2, 3, 4])
        assert _sorted_intersection_count(a, b, s=2, short_circuit=True) == 2

    def test_sorted_intersection_failure_pruning(self):
        a = np.array([1, 2])
        b = np.array([5, 6, 7])
        assert _sorted_intersection_count(a, b, s=1, short_circuit=False) == 0


class TestHashmap:
    def test_no_set_intersections(self, community_hypergraph):
        result = s_line_graph_hashmap(community_hypergraph, 2)
        assert result.workload.total_set_intersections() == 0

    def test_counter_policies_agree(self, community_hypergraph):
        dynamic = s_line_graph_hashmap(community_hypergraph, 2, counter_policy="dynamic")
        prealloc = s_line_graph_hashmap(
            community_hypergraph, 2, counter_policy="preallocated"
        )
        assert dynamic.graph == prealloc.graph

    def test_unknown_counter_policy(self, paper_example):
        with pytest.raises(ValidationError):
            s_line_graph_hashmap(paper_example, 1, counter_policy="bogus")

    def test_degree_pruning_skips_small_edges(self, paper_example):
        result = s_line_graph_hashmap(paper_example, 3)
        # Edge 3 has size 2 < 3 so it is never processed in the outer loop.
        assert result.workload.workers[0].edges_processed == 3

    def test_workload_counts_wedges(self, paper_example):
        result = s_line_graph_hashmap(paper_example, 1)
        # Total wedges = sum over edges of sum over members of deg(v).
        expected = sum(
            int(paper_example.vertex_degrees()[paper_example.edge_members(e)].sum())
            for e in range(4)
        )
        assert result.workload.total_wedges() == expected

    @pytest.mark.parametrize("strategy", ["blocked", "cyclic"])
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_parallel_configurations_match_serial(
        self, community_hypergraph, strategy, backend
    ):
        serial = s_line_graph_hashmap(community_hypergraph, 2)
        parallel = s_line_graph_hashmap(
            community_hypergraph,
            2,
            config=ParallelConfig(num_workers=4, strategy=strategy, backend=backend),
        )
        assert serial.graph == parallel.graph


class TestVectorized:
    def test_identical_to_hashmap(self, community_hypergraph):
        for s in (1, 2, 3):
            a = s_line_graph_hashmap(community_hypergraph, s)
            b = s_line_graph_vectorized(community_hypergraph, s)
            assert a.graph == b.graph

    def test_wedge_counts_match_hashmap(self, paper_example):
        a = s_line_graph_hashmap(paper_example, 1)
        b = s_line_graph_vectorized(paper_example, 1)
        assert a.workload.total_wedges() == b.workload.total_wedges()


class TestSpGEMM:
    def test_matches_filtration_oracle(self, community_hypergraph):
        for s in (1, 2, 3):
            expected = line_graph_from_filtration(community_hypergraph, s)
            assert s_line_graph_spgemm(community_hypergraph, s).graph == expected
            assert s_line_graph_spgemm_upper(community_hypergraph, s).graph == expected

    def test_upper_variant_materialises_fewer_entries(self, community_hypergraph):
        full = s_line_graph_spgemm(community_hypergraph, 2)
        upper = s_line_graph_spgemm_upper(community_hypergraph, 2)
        assert upper.workload.total_wedges() < full.workload.total_wedges()
