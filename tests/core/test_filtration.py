"""Unit tests for the Boolean filtration helpers."""
import pytest
from scipy import sparse

from repro.core.filtration import (
    filter_weighted_edges,
    filtration_matrix,
    line_graph_from_filtration,
)
from repro.hypergraph.incidence import line_graph_weight_matrix
from repro.utils.validation import ValidationError

from tests.conftest import PAPER_EXAMPLE_SLINE_EDGES


class TestFiltrationMatrix:
    def test_threshold_and_diagonal_removal(self, paper_example):
        L = line_graph_weight_matrix(paper_example)
        for s in (1, 2, 3, 4):
            Ls = filtration_matrix(L, s)
            coo = sparse.coo_matrix(Ls)
            edges = {
                (int(min(i, j)), int(max(i, j)))
                for i, j in zip(coo.row, coo.col)
            }
            assert edges == PAPER_EXAMPLE_SLINE_EDGES[s]
            assert Ls.diagonal().sum() == 0

    def test_symmetry_preserved(self, paper_example):
        L = line_graph_weight_matrix(paper_example)
        Ls = filtration_matrix(L, 2)
        assert (abs(Ls - Ls.T)).nnz == 0

    def test_invalid_s(self, paper_example):
        L = line_graph_weight_matrix(paper_example)
        with pytest.raises(ValidationError):
            filtration_matrix(L, 0)


class TestFilterWeightedEdges:
    def test_basic_filtering(self):
        pairs = [(0, 1, 5), (1, 2, 1), (2, 3, 3)]
        graph = filter_weighted_edges(pairs, s=3, num_hyperedges=5)
        assert graph.edge_set() == {(0, 1), (2, 3)}

    def test_empty_result(self):
        graph = filter_weighted_edges([(0, 1, 1)], s=2, num_hyperedges=3)
        assert graph.num_edges == 0


class TestLineGraphFromFiltration:
    @pytest.mark.parametrize("s", [1, 2, 3, 4])
    def test_matches_paper_example(self, paper_example, s):
        graph = line_graph_from_filtration(paper_example, s)
        assert graph.edge_set() == PAPER_EXAMPLE_SLINE_EDGES[s]

    def test_weights_match_overlaps(self, community_hypergraph):
        graph = line_graph_from_filtration(community_hypergraph, 2)
        for (i, j), w in graph.weight_map().items():
            assert w == community_hypergraph.inc(i, j)
