"""Unit tests for Algorithm 3 (ensemble of s-line graphs)."""

import pytest

from repro.core.algorithms.ensemble import (
    MemoryBudgetError,
    estimate_overlap_memory,
    s_line_graph_ensemble_hashmap,
)
from repro.core.algorithms.hashmap import s_line_graph_hashmap
from repro.parallel.executor import ParallelConfig
from repro.utils.validation import ValidationError

from tests.conftest import PAPER_EXAMPLE_SLINE_EDGES


class TestEnsemble:
    def test_matches_figure2(self, paper_example):
        ensemble, workload = s_line_graph_ensemble_hashmap(paper_example, [1, 2, 3, 4])
        for s in (1, 2, 3, 4):
            assert ensemble[s].edge_set() == PAPER_EXAMPLE_SLINE_EDGES[s]
        assert workload.total_set_intersections() == 0

    def test_matches_single_s_algorithm(self, community_hypergraph):
        s_values = [1, 2, 3, 4]
        ensemble, _ = s_line_graph_ensemble_hashmap(community_hypergraph, s_values)
        for s in s_values:
            single = s_line_graph_hashmap(community_hypergraph, s)
            assert ensemble[s] == single.graph

    def test_single_counting_pass(self, paper_example):
        """The counting pass is shared: wedge work equals one hashmap run at s_min."""
        ensemble, workload = s_line_graph_ensemble_hashmap(paper_example, [2, 3])
        single = s_line_graph_hashmap(paper_example, 2)
        assert workload.total_wedges() == single.workload.total_wedges()

    def test_duplicate_and_unsorted_s_values(self, paper_example):
        ensemble, _ = s_line_graph_ensemble_hashmap(paper_example, [3, 1, 3])
        assert ensemble.s_values == [1, 3]

    def test_edge_counts_monotone_in_s(self, community_hypergraph):
        ensemble, _ = s_line_graph_ensemble_hashmap(community_hypergraph, [1, 2, 3, 4, 5])
        counts = ensemble.edge_counts()
        values = [counts[s] for s in sorted(counts)]
        assert values == sorted(values, reverse=True)

    def test_empty_s_values_rejected(self, paper_example):
        with pytest.raises(ValidationError):
            s_line_graph_ensemble_hashmap(paper_example, [])

    def test_parallel_counting_matches_serial(self, community_hypergraph):
        serial, _ = s_line_graph_ensemble_hashmap(community_hypergraph, [2, 3])
        parallel, _ = s_line_graph_ensemble_hashmap(
            community_hypergraph,
            [2, 3],
            config=ParallelConfig(num_workers=3, strategy="cyclic", backend="thread"),
        )
        for s in (2, 3):
            assert serial[s] == parallel[s]


class TestMemoryBudget:
    def test_estimate_is_positive(self, community_hypergraph):
        assert estimate_overlap_memory(community_hypergraph, 1) > 0

    def test_estimate_shrinks_with_pruning(self, paper_example):
        assert estimate_overlap_memory(paper_example, 5) <= estimate_overlap_memory(
            paper_example, 1
        )

    def test_budget_exceeded_raises(self, community_hypergraph):
        with pytest.raises(MemoryBudgetError):
            s_line_graph_ensemble_hashmap(
                community_hypergraph, [1, 2], memory_budget_bytes=16
            )

    def test_budget_respected_when_large(self, paper_example):
        ensemble, _ = s_line_graph_ensemble_hashmap(
            paper_example, [2], memory_budget_bytes=10**9
        )
        assert ensemble[2].edge_set() == PAPER_EXAMPLE_SLINE_EDGES[2]

    def test_budget_error_is_memory_error(self):
        assert issubclass(MemoryBudgetError, MemoryError)
