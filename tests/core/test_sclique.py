"""Unit tests for the s-clique graph API (vertex-centric expansions, §III-H)."""

from repro.core.sclique import (
    s_clique_graph,
    s_clique_graph_ensemble,
    two_section,
    weighted_clique_expansion,
)
from repro.hypergraph.builders import hypergraph_from_edge_lists


class TestSCliqueGraph:
    def test_two_section_of_paper_example(self, paper_example):
        """H_2 links every vertex pair that shares a hyperedge (Figure 3)."""
        h2 = two_section(paper_example)
        # Vertices a..e form a clique (all within edge 3); f connects only to e.
        expected = {(i, j) for i in range(5) for j in range(i + 1, 5)} | {(4, 5)}
        assert h2.edge_set() == expected

    def test_s_clique_links_require_s_shared_edges(self):
        h = hypergraph_from_edge_lists([[0, 1], [0, 1], [1, 2]])
        assert s_clique_graph(h, 1).edge_set() == {(0, 1), (1, 2)}
        assert s_clique_graph(h, 2).edge_set() == {(0, 1)}
        assert s_clique_graph(h, 3).edge_set() == set()

    def test_matches_filtration_of_weighted_expansion(self, community_hypergraph):
        W = weighted_clique_expansion(community_hypergraph).toarray()
        for s in (1, 2, 3):
            graph = s_clique_graph(community_hypergraph, s)
            expected = {
                (i, j)
                for i in range(W.shape[0])
                for j in range(i + 1, W.shape[0])
                if W[i, j] >= s
            }
            assert graph.edge_set() == expected

    def test_weights_equal_adj_counts(self, paper_example):
        graph = s_clique_graph(paper_example, 1)
        for (u, v), w in graph.weight_map().items():
            assert w == paper_example.adj(u, v)

    def test_return_workload(self, paper_example):
        graph, workload = s_clique_graph(paper_example, 1, return_workload=True)
        assert workload.total_wedges() > 0
        assert graph.num_edges > 0

    def test_ensemble_matches_individual(self, community_hypergraph):
        ensemble = s_clique_graph_ensemble(community_hypergraph, [1, 2, 3])
        for s in (1, 2, 3):
            assert ensemble[s] == s_clique_graph(community_hypergraph, s)


class TestWeightedCliqueExpansion:
    def test_diagonal_is_zero(self, paper_example):
        W = weighted_clique_expansion(paper_example)
        assert W.diagonal().sum() == 0

    def test_symmetric(self, community_hypergraph):
        W = weighted_clique_expansion(community_hypergraph)
        assert (abs(W - W.T)).nnz == 0
