"""Unit tests for the SLineGraph result type."""

import numpy as np
import pytest

from repro.core.slinegraph import SLineGraph, SLineGraphEnsemble
from repro.utils.validation import ValidationError


def make_graph(s=2, edges=((0, 1, 2), (1, 3, 5)), num_hyperedges=5, active=None):
    return SLineGraph.from_weighted_pairs(
        s=s, pairs=list(edges), num_hyperedges=num_hyperedges, active_vertices=active
    )


class TestConstruction:
    def test_basic(self):
        g = make_graph()
        assert g.num_edges == 2
        assert g.edge_set() == {(0, 1), (1, 3)}
        assert g.weight_map() == {(0, 1): 2, (1, 3): 5}

    def test_empty(self):
        g = SLineGraph.from_weighted_pairs(s=3, pairs=[], num_hyperedges=4)
        assert g.num_edges == 0
        assert g.vertex_ids.size == 0
        assert g.num_active_vertices == 0

    def test_unordered_pairs_normalised(self):
        g = make_graph(edges=((3, 1, 5), (1, 0, 2)))
        assert g.edges.tolist() == [[0, 1], [1, 3]]

    def test_duplicate_pairs_collapsed(self):
        g = make_graph(edges=((0, 1, 2), (1, 0, 3)))
        assert g.num_edges == 1
        assert g.weights.tolist() == [3]

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            make_graph(edges=((1, 1, 2),))

    def test_weight_below_s_rejected(self):
        with pytest.raises(ValidationError):
            make_graph(s=4, edges=((0, 1, 2),))

    def test_endpoint_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            make_graph(edges=((0, 9, 2),), num_hyperedges=5)

    def test_invalid_s(self):
        with pytest.raises(ValidationError):
            make_graph(s=0)

    def test_degree_of(self):
        g = make_graph()
        assert g.degree_of(1) == 2
        assert g.degree_of(4) == 0


class TestSqueeze:
    def test_squeeze_compacts_ids(self):
        g = make_graph(edges=((2, 7, 3), (7, 9, 4)), num_hyperedges=10, s=2)
        squeezed, mapping = g.squeeze()
        assert mapping.new_to_old.tolist() == [2, 7, 9]
        assert squeezed.edge_set() == {(0, 1), (1, 2)}
        assert squeezed.weights.tolist() == [3, 4]

    def test_squeeze_include_isolated(self):
        g = make_graph(
            edges=((2, 7, 3),), num_hyperedges=10, s=2, active=np.array([2, 5, 7])
        )
        squeezed, mapping = g.squeeze(include_isolated=True)
        assert mapping.new_to_old.tolist() == [2, 5, 7]
        assert squeezed.num_active_vertices == 3

    def test_squeeze_empty(self):
        g = SLineGraph.from_weighted_pairs(s=2, pairs=[], num_hyperedges=5)
        squeezed, mapping = g.squeeze()
        assert squeezed.num_edges == 0
        assert mapping.num_ids == 0


class TestConversions:
    def test_adjacency_matrix_unsqueezed(self):
        g = make_graph()
        A = g.adjacency_matrix(weighted=True).toarray()
        assert A.shape == (5, 5)
        assert A[0, 1] == 2 and A[1, 0] == 2
        assert A[1, 3] == 5

    def test_adjacency_matrix_squeezed(self):
        g = make_graph(edges=((2, 7, 3),), num_hyperedges=10)
        A = g.adjacency_matrix(squeezed=True).toarray()
        assert A.shape == (2, 2)

    def test_to_graph(self):
        g = make_graph()
        graph = g.to_graph()
        assert graph.num_edges == 2
        assert graph.metadata["s"] == 2

    def test_to_networkx(self):
        g = make_graph(active=np.array([0, 1, 2, 3, 4]))
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 5
        assert nxg.number_of_edges() == 2
        assert nxg[0][1]["weight"] == 2
        assert nxg.graph["s"] == 2

    def test_equality(self):
        assert make_graph() == make_graph()
        assert make_graph() != make_graph(edges=((0, 1, 2),))


class TestEnsemble:
    def test_access_and_edge_counts(self):
        ens = SLineGraphEnsemble(
            graphs={
                1: make_graph(s=1, edges=((0, 1, 1), (1, 2, 2))),
                2: make_graph(s=2, edges=((1, 2, 2),)),
            }
        )
        assert ens.s_values == [1, 2]
        assert 1 in ens and 3 not in ens
        assert len(ens) == 2
        assert ens.edge_counts() == {1: 2, 2: 1}
        assert ens[2].num_edges == 1
        assert [s for s, _ in ens.items()] == [1, 2]
