"""Unit and integration tests for the five-stage SLinePipeline."""
import pytest

from repro.core.pipeline import METRIC_FUNCTIONS, SLinePipeline
from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.utils.validation import ValidationError

from tests.conftest import PAPER_EXAMPLE_SLINE_EDGES


class TestConfiguration:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValidationError):
            SLinePipeline(algorithm="bogus")

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValidationError):
            SLinePipeline(metrics=("made_up",))

    def test_metrics_require_squeeze(self):
        with pytest.raises(ValidationError):
            SLinePipeline(squeeze=False, metrics=("connected_components",))

    def test_metric_registry_contains_paper_metrics(self):
        for name in ("connected_components", "lpcc", "betweenness", "pagerank"):
            assert name in METRIC_FUNCTIONS


class TestStageOutputs:
    @pytest.mark.parametrize("s", [1, 2, 3, 4])
    def test_line_graph_matches_figure2(self, paper_example, s):
        result = SLinePipeline(metrics=()).run(paper_example, s)
        assert result.line_graph.edge_set() == PAPER_EXAMPLE_SLINE_EDGES[s]

    def test_stage_times_recorded(self, paper_example):
        result = SLinePipeline(metrics=("connected_components",)).run(paper_example, 2)
        for stage in ("preprocessing", "s_overlap", "squeeze", "connected_components"):
            assert stage in result.stage_times.times
        assert result.stage_times.total > 0.0

    def test_squeeze_mapping_consistent(self, paper_example):
        result = SLinePipeline().run(paper_example, 3)
        # s = 3 line graph uses hyperedges {0, 1, 2}.
        assert result.squeeze_mapping.new_to_old.tolist() == [0, 1, 2]
        assert result.squeezed_graph.num_vertices == 3

    def test_metrics_on_squeezed_graph(self, paper_example):
        result = SLinePipeline(
            metrics=("connected_components", "betweenness", "pagerank")
        ).run(paper_example, 2)
        assert result.num_components() == 1
        assert result.metrics["pagerank"].size == 3
        by_edge = result.metric_by_hyperedge("pagerank")
        assert set(by_edge) == {0, 1, 2}
        assert sum(by_edge.values()) == pytest.approx(1.0)

    def test_metric_by_hyperedge_unknown_metric(self, paper_example):
        result = SLinePipeline(metrics=()).run(paper_example, 2)
        with pytest.raises(KeyError):
            result.metric_by_hyperedge("pagerank")

    def test_workload_propagated(self, paper_example):
        result = SLinePipeline().run(paper_example, 2)
        assert result.workload.total_wedges() > 0


class TestPreprocessingInteraction:
    def test_relabel_results_in_original_ids(self, community_hypergraph):
        plain = SLinePipeline(relabel="none", metrics=()).run(community_hypergraph, 2)
        relabelled = SLinePipeline(relabel="ascending", metrics=()).run(
            community_hypergraph, 2
        )
        assert plain.line_graph.edge_set() == relabelled.line_graph.edge_set()

    def test_empty_edges_do_not_shift_ids(self):
        # Edge 1 is empty; edges 0, 2, 3 overlap pairwise in vertex 0.
        h = hypergraph_from_edge_lists(
            [[0, 1], [], [0, 2], [0, 3]], num_vertices=4
        )
        result = SLinePipeline(metrics=()).run(h, 1)
        assert result.line_graph.edge_set() == {(0, 2), (0, 3), (2, 3)}

    def test_toplex_stage_runs(self, paper_example):
        result = SLinePipeline(compute_toplexes=True, metrics=()).run(paper_example, 1)
        assert "toplexes" in result.stage_times.times
        # After simplification only edges {a,b,c,d,e} and {e,f} remain; they overlap in e.
        assert result.line_graph.num_edges == 1

    @pytest.mark.parametrize("algorithm", ["hashmap", "heuristic", "vectorized", "spgemm"])
    def test_pipeline_algorithm_choices_agree(self, community_hypergraph, algorithm):
        result = SLinePipeline(algorithm=algorithm, metrics=()).run(community_hypergraph, 2)
        reference = SLinePipeline(algorithm="naive", metrics=()).run(community_hypergraph, 2)
        assert result.line_graph.edge_set() == reference.line_graph.edge_set()


class TestComponentCounts:
    def test_num_components_none_without_metric(self, paper_example):
        result = SLinePipeline(metrics=("pagerank",)).run(paper_example, 2)
        assert result.num_components() is None

    def test_lpcc_and_bfs_agree(self, community_hypergraph):
        a = SLinePipeline(metrics=("connected_components",)).run(community_hypergraph, 2)
        b = SLinePipeline(metrics=("lpcc",)).run(community_hypergraph, 2)
        assert a.num_components() == b.num_components()
