"""Unit tests for the top-level s_line_graph / s_line_graph_ensemble dispatch."""

import pytest

from repro.core.dispatch import ALGORITHMS, s_line_graph, s_line_graph_ensemble
from repro.parallel.workload import WorkloadStats
from repro.utils.validation import ValidationError

from tests.conftest import PAPER_EXAMPLE_SLINE_EDGES


class TestDispatch:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_all_registered_algorithms_run(self, paper_example, algorithm):
        graph = s_line_graph(paper_example, 2, algorithm=algorithm)
        assert graph.edge_set() == PAPER_EXAMPLE_SLINE_EDGES[2]

    def test_default_algorithm_is_hashmap(self, paper_example):
        graph = s_line_graph(paper_example, 2)
        assert graph.edge_set() == PAPER_EXAMPLE_SLINE_EDGES[2]

    def test_unknown_algorithm_rejected(self, paper_example):
        with pytest.raises(ValidationError):
            s_line_graph(paper_example, 2, algorithm="quantum")

    def test_return_workload(self, paper_example):
        graph, workload = s_line_graph(paper_example, 2, return_workload=True)
        assert isinstance(workload, WorkloadStats)
        assert graph.num_edges == 3

    def test_algorithm_descriptions_present(self):
        assert "hashmap" in ALGORITHMS
        assert all(isinstance(v, str) and v for v in ALGORITHMS.values())


class TestEnsembleDispatch:
    def test_basic(self, paper_example):
        ensemble = s_line_graph_ensemble(paper_example, [1, 2, 3, 4])
        assert ensemble.edge_counts() == {1: 4, 2: 3, 3: 2, 4: 0}

    def test_return_workload(self, paper_example):
        ensemble, workload = s_line_graph_ensemble(
            paper_example, [2], return_workload=True
        )
        assert workload.total_set_intersections() == 0
        assert ensemble[2].num_edges == 3
