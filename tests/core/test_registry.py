"""Unit tests for the Table III variant notation and runner."""

import pytest

from repro.core.algorithms.registry import (
    ALL_VARIANTS,
    parse_variant,
    run_all_variants,
    run_variant,
)
from repro.utils.validation import ValidationError

from tests.conftest import PAPER_EXAMPLE_SLINE_EDGES


class TestParseVariant:
    def test_all_twelve_variants_parse(self):
        assert len(ALL_VARIANTS) == 12
        for notation in ALL_VARIANTS:
            spec = parse_variant(notation)
            assert spec.notation == notation
            assert spec.algorithm in (1, 2)
            assert spec.partitioning in ("blocked", "cyclic")
            assert spec.relabel in ("ascending", "descending", "none")

    def test_specific_decoding(self):
        spec = parse_variant("2BA")
        assert spec.algorithm == 2
        assert spec.partitioning == "blocked"
        assert spec.relabel == "ascending"
        assert spec.uses_hashmap
        spec = parse_variant("1CN")
        assert spec.algorithm == 1
        assert spec.partitioning == "cyclic"
        assert spec.relabel == "none"
        assert not spec.uses_hashmap

    def test_lowercase_accepted(self):
        assert parse_variant("2cd").notation == "2CD"

    @pytest.mark.parametrize("bad", ["3BA", "2XA", "2BZ", "2B", "2BAA", ""])
    def test_invalid_notations_rejected(self, bad):
        with pytest.raises(ValidationError):
            parse_variant(bad)


class TestRunVariant:
    @pytest.mark.parametrize("notation", ALL_VARIANTS)
    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_all_variants_agree_on_paper_example(self, paper_example, notation, s):
        result = run_variant(paper_example, s, notation)
        assert result.graph.edge_set() == PAPER_EXAMPLE_SLINE_EDGES[s]

    def test_relabelled_edges_mapped_back_to_original_ids(self, community_hypergraph):
        baseline = run_variant(community_hypergraph, 2, "2BN")
        relabelled = run_variant(community_hypergraph, 2, "2BA")
        assert baseline.graph.edge_set() == relabelled.graph.edge_set()

    def test_times_include_relabel_and_overlap(self, paper_example):
        result = run_variant(paper_example, 2, "2CA")
        assert "relabel" in result.times.times
        assert "s_overlap" in result.times.times
        assert result.total_seconds > 0.0

    def test_workload_populated(self, community_hypergraph):
        result = run_variant(community_hypergraph, 2, "2CN", num_workers=4)
        assert result.workload.num_workers == 4
        assert result.workload.total_wedges() > 0

    def test_run_all_variants_subset(self, paper_example):
        out = run_all_variants(paper_example, 2, variants=["1BN", "2BN"])
        assert set(out) == {"1BN", "2BN"}
        assert out["1BN"].graph.edge_set() == out["2BN"].graph.edge_set()
