"""Write-ahead log framing, replay, and torn-tail crash recovery."""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.store.format import StoreError, StoreFormatError
from repro.store.wal import OP_ADD, OP_REMOVE, WriteAheadLog


@pytest.fixture
def wal(tmp_path):
    return WriteAheadLog(tmp_path / "wal.log")


def append_three(wal):
    wal.append_add(4, [0, 1, 5], [0, 1], [2, 1], fingerprint="f1", name="e4")
    wal.append_remove(1, fingerprint="f2")
    wal.append_add(5, [2, 3], [2], [1], fingerprint="f3")


class TestAppendReplay:
    def test_roundtrip(self, wal):
        append_three(wal)
        records, _, torn = wal.replay()
        assert not torn
        assert [r.op for r in records] == [OP_ADD, OP_REMOVE, OP_ADD]
        assert [r.seq for r in records] == [1, 2, 3]
        add = records[0]
        assert add.edge_id == 4
        assert add.payload["members"] == [0, 1, 5]
        assert add.payload["size"] == 3
        assert add.payload["pair_ids"] == [0, 1]
        assert add.payload["pair_weights"] == [2, 1]
        assert add.payload["name"] == "e4"
        assert add.fingerprint == "f1"
        assert records[1].edge_id == 1

    def test_missing_file_is_empty(self, wal):
        records, nbytes, torn = wal.replay()
        assert records == [] and nbytes == 0 and not torn

    def test_len(self, wal):
        assert len(wal) == 0
        append_three(wal)
        assert len(wal) == 3

    def test_truncate_resets(self, wal):
        append_three(wal)
        wal.truncate()
        assert len(wal) == 0
        wal.append_remove(0)
        assert [r.seq for r in wal.recover()] == [1]

    def test_records_accept_numpy_inputs(self, wal):
        wal.append_add(
            7,
            np.array([3, 4], dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.array([2], dtype=np.int64),
        )
        (record,) = wal.recover()
        assert record.payload["members"] == [3, 4]
        assert record.fingerprint is None


class TestCrashRecovery:
    def test_partial_trailing_line_dropped(self, wal):
        append_three(wal)
        with open(wal.path, "ab") as handle:
            handle.write(b"4\t01234567\t{\"op\": \"remove\", \"edge")
        fresh = WriteAheadLog(wal.path)
        records, _, torn = fresh.replay()
        assert torn and len(records) == 3
        assert len(fresh.recover()) == 3
        # The torn bytes are physically gone after recovery.
        _, _, torn = WriteAheadLog(wal.path).replay()
        assert not torn

    def test_corrupt_crc_stops_replay(self, wal):
        append_three(wal)
        data = Path(wal.path).read_bytes().splitlines(keepends=True)
        # Flip a payload byte of record 2: its CRC no longer matches, so
        # replay must stop before it even though record 3 is intact.
        corrupted = data[1][:-3] + b"X" + data[1][-2:]
        with open(wal.path, "wb") as handle:
            handle.write(data[0] + corrupted + data[2])
        records = WriteAheadLog(wal.path).recover()
        assert [r.seq for r in records] == [1]

    def test_sequence_break_stops_replay(self, wal):
        append_three(wal)
        data = Path(wal.path).read_bytes().splitlines(keepends=True)
        with open(wal.path, "wb") as handle:
            handle.write(data[0] + data[2])  # record 2 missing: seq 1 then 3
        records = WriteAheadLog(wal.path).recover()
        assert [r.seq for r in records] == [1]

    def test_append_after_crash_requires_recovery(self, wal):
        append_three(wal)
        with open(wal.path, "ab") as handle:
            handle.write(b"garbage")
        fresh = WriteAheadLog(wal.path)
        with pytest.raises(StoreFormatError, match="torn tail"):
            fresh.append_remove(0)
        fresh.recover()
        record = fresh.append_remove(0)
        assert record.seq == 4

    def test_recovery_is_idempotent(self, wal):
        append_three(wal)
        size = os.path.getsize(wal.path)
        assert len(wal.recover()) == 3
        assert os.path.getsize(wal.path) == size


class _FlakyHandle:
    """Wrap the batch file handle so one write fails like ENOSPC would."""

    def __init__(self, handle):
        self._handle = handle
        self.fail_next = False

    def write(self, data):
        if self.fail_next:
            self.fail_next = False
            raise OSError(28, "No space left on device")
        return self._handle.write(data)

    def __getattr__(self, name):
        return getattr(self._handle, name)


class TestFailedAppendRecovery:
    """Regression (seq-gap bug): a failed append must not burn a sequence
    number.  The old code advanced the sequence *before* the write, so the
    next successful append framed seq N+1 with no seq N on disk — replay
    stopped at the gap and silently discarded every later, durable,
    acknowledged record on recovery."""

    def test_failed_append_does_not_create_a_seq_gap(self, wal, monkeypatch):
        import repro.store.wal as wal_module

        append_three(wal)

        def failing_fsync(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(wal_module.os, "fsync", failing_fsync)
        with pytest.raises(OSError, match="No space"):
            wal.append_remove(9)
        monkeypatch.undo()

        # The next append reuses the failed record's sequence number...
        record = wal.append_remove(7)
        assert record.seq == 4
        wal.append_add(8, [0, 1], [0], [2])
        # ...and recovery sees every acknowledged record, none lost.
        records = WriteAheadLog(wal.path).recover()
        assert [r.seq for r in records] == [1, 2, 3, 4, 5]
        assert records[3].edge_id == 7
        assert 9 not in [r.edge_id for r in records]  # never acknowledged

    def test_acknowledged_records_survive_recovery_after_failed_append(
        self, wal, monkeypatch
    ):
        """The acceptance scenario: ack, fail, ack, crash, recover."""
        import repro.store.wal as wal_module

        acked = []
        acked.append(wal.append_add(4, [0, 1], [0], [2]).seq)

        monkeypatch.setattr(
            wal_module.os, "fsync", lambda fd: (_ for _ in ()).throw(OSError(28, "full"))
        )
        with pytest.raises(OSError):
            wal.append_add(5, [1, 2], [1], [1])
        monkeypatch.undo()

        acked.append(wal.append_add(5, [1, 2], [1], [1]).seq)
        acked.append(wal.append_remove(0).seq)
        # A fresh process (crash + restart) replays the log from scratch.
        recovered = WriteAheadLog(wal.path).recover()
        assert [r.seq for r in recovered] == acked == [1, 2, 3]
        assert [r.op for r in recovered] == [OP_ADD, OP_ADD, OP_REMOVE]

    def test_failed_append_poisons_an_open_batch(self, wal):
        with wal.batch():
            wal.append_remove(0)
            flaky = _FlakyHandle(wal._batch_handle)
            wal._batch_handle = flaky
            flaky.fail_next = True
            with pytest.raises(OSError, match="No space"):
                wal.append_remove(1)
            # The broken frame may be torn on disk; later appends would
            # land after the tear and be discarded by replay.
            with pytest.raises(StoreError, match="poisoned"):
                wal.append_remove(2)
        assert wal.batch_commits == 0  # a poisoned batch is not a commit
        # The good prefix survives, the log is append-ready again.
        assert [r.seq for r in wal.replay()[0]] == [1]
        record = wal.append_remove(3)
        assert record.seq == 2
        assert [r.edge_id for r in WriteAheadLog(wal.path).recover()] == [0, 3]

    def test_poisoned_batch_trims_a_torn_frame_on_exit(self, wal):
        class _TearingHandle(_FlakyHandle):
            def write(self, data):
                if self.fail_next:
                    self.fail_next = False
                    self._handle.write(data[: len(data) // 2])  # torn frame
                    raise OSError(5, "Input/output error")
                return self._handle.write(data)

        with wal.batch():
            wal.append_remove(0)
            tearing = _TearingHandle(wal._batch_handle)
            wal._batch_handle = tearing
            tearing.fail_next = True
            with pytest.raises(OSError):
                wal.append_remove(1)
        records, _, torn = WriteAheadLog(wal.path).replay()
        assert not torn  # exit trimmed the half-written frame
        assert [r.seq for r in records] == [1]
        assert wal.append_remove(5).seq == 2
