"""Write-ahead log framing, replay, and torn-tail crash recovery."""

import os

import numpy as np
import pytest

from repro.store.format import StoreFormatError
from repro.store.wal import OP_ADD, OP_REMOVE, WriteAheadLog


@pytest.fixture
def wal(tmp_path):
    return WriteAheadLog(tmp_path / "wal.log")


def append_three(wal):
    wal.append_add(4, [0, 1, 5], [0, 1], [2, 1], fingerprint="f1", name="e4")
    wal.append_remove(1, fingerprint="f2")
    wal.append_add(5, [2, 3], [2], [1], fingerprint="f3")


class TestAppendReplay:
    def test_roundtrip(self, wal):
        append_three(wal)
        records, _, torn = wal.replay()
        assert not torn
        assert [r.op for r in records] == [OP_ADD, OP_REMOVE, OP_ADD]
        assert [r.seq for r in records] == [1, 2, 3]
        add = records[0]
        assert add.edge_id == 4
        assert add.payload["members"] == [0, 1, 5]
        assert add.payload["size"] == 3
        assert add.payload["pair_ids"] == [0, 1]
        assert add.payload["pair_weights"] == [2, 1]
        assert add.payload["name"] == "e4"
        assert add.fingerprint == "f1"
        assert records[1].edge_id == 1

    def test_missing_file_is_empty(self, wal):
        records, nbytes, torn = wal.replay()
        assert records == [] and nbytes == 0 and not torn

    def test_len(self, wal):
        assert len(wal) == 0
        append_three(wal)
        assert len(wal) == 3

    def test_truncate_resets(self, wal):
        append_three(wal)
        wal.truncate()
        assert len(wal) == 0
        wal.append_remove(0)
        assert [r.seq for r in wal.recover()] == [1]

    def test_records_accept_numpy_inputs(self, wal):
        wal.append_add(
            7,
            np.array([3, 4], dtype=np.int64),
            np.array([0], dtype=np.int64),
            np.array([2], dtype=np.int64),
        )
        (record,) = wal.recover()
        assert record.payload["members"] == [3, 4]
        assert record.fingerprint is None


class TestCrashRecovery:
    def test_partial_trailing_line_dropped(self, wal):
        append_three(wal)
        with open(wal.path, "ab") as handle:
            handle.write(b"4\t01234567\t{\"op\": \"remove\", \"edge")
        fresh = WriteAheadLog(wal.path)
        records, _, torn = fresh.replay()
        assert torn and len(records) == 3
        assert len(fresh.recover()) == 3
        # The torn bytes are physically gone after recovery.
        _, _, torn = WriteAheadLog(wal.path).replay()
        assert not torn

    def test_corrupt_crc_stops_replay(self, wal):
        append_three(wal)
        data = open(wal.path, "rb").read().splitlines(keepends=True)
        # Flip a payload byte of record 2: its CRC no longer matches, so
        # replay must stop before it even though record 3 is intact.
        corrupted = data[1][:-3] + b"X" + data[1][-2:]
        with open(wal.path, "wb") as handle:
            handle.write(data[0] + corrupted + data[2])
        records = WriteAheadLog(wal.path).recover()
        assert [r.seq for r in records] == [1]

    def test_sequence_break_stops_replay(self, wal):
        append_three(wal)
        data = open(wal.path, "rb").read().splitlines(keepends=True)
        with open(wal.path, "wb") as handle:
            handle.write(data[0] + data[2])  # record 2 missing: seq 1 then 3
        records = WriteAheadLog(wal.path).recover()
        assert [r.seq for r in records] == [1]

    def test_append_after_crash_requires_recovery(self, wal):
        append_three(wal)
        with open(wal.path, "ab") as handle:
            handle.write(b"garbage")
        fresh = WriteAheadLog(wal.path)
        with pytest.raises(StoreFormatError, match="torn tail"):
            fresh.append_remove(0)
        fresh.recover()
        record = fresh.append_remove(0)
        assert record.seq == 4

    def test_recovery_is_idempotent(self, wal):
        append_three(wal)
        size = os.path.getsize(wal.path)
        assert len(wal.recover()) == 3
        assert os.path.getsize(wal.path) == size
