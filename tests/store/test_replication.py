"""Snapshot replication: payload builders, StoreMirror sync, crash safety.

The mirror's contract is byte-for-byte fidelity: after every sync, the
mirror directory holds exactly the source's snapshot files, manifest and
write-ahead log (the sidecar cursor and writer lock excepted), so any
store reader serves identical answers from either directory.
"""

import os
from pathlib import Path

import pytest

from repro.engine.engine import QueryEngine
from repro.store import (
    IndexStore,
    LocalReplicationSource,
    PersistentQueryEngine,
    ReplicationError,
    ReplicationStaleError,
    StoreMirror,
)
from repro.store.format import HYPERGRAPH_NAME, WAL_NAME
from repro.store.replication import (
    MIRROR_STATE_NAME,
    fetch_payload,
    file_crc32,
    manifest_payload,
    wal_payload,
)
from repro.utils.rng import make_rng

#: Files that legitimately differ between a source and its mirror.
_NON_STORE_FILES = {MIRROR_STATE_NAME, "writer.lock"}


def store_files(path):
    """``relative name -> bytes`` of every store file under ``path``."""
    out = {}
    for root, _, files in os.walk(str(path)):
        for name in files:
            if name in _NON_STORE_FILES or name.endswith((".sync", ".staged")):
                continue
            full = os.path.join(root, name)
            rel = os.path.relpath(full, str(path)).replace(os.sep, "/")
            with open(full, "rb") as handle:
                out[rel] = handle.read()
    return out


def live_store_files(path):
    """``relative name -> bytes`` of the files the live manifest references
    (plus the manifest, WAL and hypergraph) — the state a reader opens.
    A killed sync may leave staged next-generation files alongside; those
    are invisible to readers and excluded here."""
    from repro.store.format import read_manifest

    manifest = read_manifest(path)
    names = ["manifest.json", WAL_NAME, HYPERGRAPH_NAME, manifest.edge_sizes_file]
    for info in manifest.shards:
        names.append(f"shards/{info.edges_file}")
        names.append(f"shards/{info.weights_file}")
    out = {}
    for name in names:
        full = os.path.join(str(path), *name.split("/"))
        if os.path.isfile(full):
            with open(full, "rb") as handle:
                out[name] = handle.read()
    return out


def assert_byte_identical(source_path, mirror_path):
    source, mirror = store_files(source_path), store_files(mirror_path)
    assert sorted(source) == sorted(mirror)
    for name in source:
        assert source[name] == mirror[name], f"mirror differs from source: {name}"


@pytest.fixture
def source_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "src", num_shards=4)
    return str(tmp_path / "src")


@pytest.fixture
def mirror_path(tmp_path):
    return str(tmp_path / "dst")


@pytest.fixture
def writer(source_path):
    return PersistentQueryEngine.open(source_path)


def random_members(h, rng, size=5):
    return sorted(set(int(v) for v in rng.choice(h.num_vertices, size=size)))


class TestPayloads:
    def test_manifest_payload_lists_every_snapshot_file(self, source_path):
        payload = manifest_payload(source_path)
        store = IndexStore.open(source_path)
        names = {f["name"] for f in payload["files"]}
        for info in store.manifest.shards:
            assert f"shards/{info.edges_file}" in names
            assert f"shards/{info.weights_file}" in names
        assert store.manifest.edge_sizes_file in names
        assert HYPERGRAPH_NAME in names
        assert payload["generation"] == store.manifest.generation
        assert payload["state_token"] == list(store.current_state_token())
        for entry in payload["files"]:
            full = os.path.join(source_path, *entry["name"].split("/"))
            assert entry["size"] == os.path.getsize(full)
            assert entry["crc32"] == file_crc32(full)

    def test_manifest_payload_caches_checksums(self, source_path):
        cache = {}
        first = manifest_payload(source_path, cache=cache)
        assert cache
        again = manifest_payload(source_path, cache=cache)
        assert first["files"] == again["files"]

    def test_wal_payload_cursor(self, source_path, writer):
        writer.add_hyperedge([0, 1, 2])
        writer.add_hyperedge([1, 2, 3])
        full = wal_payload(source_path, 0, 0)
        assert full["total"] == 2
        assert [r["seq"] for r in full["records"]] == [1, 2]
        tail = wal_payload(source_path, 0, 1)
        assert tail["total"] == 2
        assert [r["seq"] for r in tail["records"]] == [2]
        assert wal_payload(source_path, 0, 2)["records"] == []

    def test_wal_payload_rejects_stale_generation(self, source_path, writer):
        writer.add_hyperedge([0, 1, 2])
        writer.compact()
        with pytest.raises(ReplicationStaleError, match="generation"):
            wal_payload(source_path, 0, 0)

    def test_fetch_payload_chunks_and_bounds(self, source_path):
        store = IndexStore.open(source_path)
        name = store.manifest.edge_sizes_file
        size = os.path.getsize(os.path.join(source_path, name))
        first = fetch_payload(source_path, name, 0, 0, 16, raw=True)
        assert first["size"] == size and len(first["data"]) == 16
        assert first["eof"] is (size <= 16)
        rest = fetch_payload(source_path, name, 0, 16, size, raw=True)
        assert rest["eof"] is True
        with open(os.path.join(source_path, name), "rb") as handle:
            assert first["data"] + rest["data"] == handle.read()

    def test_fetch_payload_is_base64_on_the_wire(self, source_path):
        import base64

        store = IndexStore.open(source_path)
        name = store.manifest.edge_sizes_file
        wire = fetch_payload(source_path, name, 0, 0, 16)
        assert isinstance(wire["data"], str)
        assert base64.b64decode(wire["data"]) == fetch_payload(
            source_path, name, 0, 0, 16, raw=True
        )["data"]

    def test_fetch_payload_refuses_non_snapshot_files(self, source_path):
        from repro.utils.validation import ValidationError

        for name in (WAL_NAME, "../secrets", "manifest.json", "shards/nope.npy"):
            with pytest.raises((ValidationError, ReplicationStaleError)):
                fetch_payload(source_path, name, 0, 0, 1024)

    def test_fetch_payload_rejects_stale_generation(self, source_path, writer):
        store = IndexStore.open(source_path)
        name = f"shards/{store.manifest.shards[0].edges_file}"
        writer.add_hyperedge([0, 1, 2])
        writer.compact()  # sweeps generation-0 files
        with pytest.raises(ReplicationStaleError):
            fetch_payload(source_path, name, 0, 0, 1024)


class TestStoreMirror:
    def test_bootstrap_is_byte_identical(self, source_path, mirror_path):
        mirror = StoreMirror(LocalReplicationSource(source_path), mirror_path)
        report = mirror.sync()
        assert report.full_sync and report.changed
        assert report.fetched_files > 0
        assert_byte_identical(source_path, mirror_path)
        # The mirror is a fully functional store.
        engine = PersistentQueryEngine.open(mirror_path, read_only=True, sharded=True)
        source = PersistentQueryEngine.open(source_path, read_only=True)
        assert engine.fingerprint() == source.fingerprint()
        assert engine.metric_by_hyperedge(2, "pagerank") == pytest.approx(
            source.metric_by_hyperedge(2, "pagerank")
        )

    def test_wal_tail_rides_delta_syncs(self, source_path, mirror_path, writer):
        mirror = StoreMirror(LocalReplicationSource(source_path), mirror_path)
        mirror.sync()
        rng = make_rng(3)
        for _ in range(4):
            writer.add_hyperedge(random_members(writer.hypergraph, rng))
        writer.remove_hyperedge(1)
        report = mirror.sync()
        assert not report.full_sync
        assert report.fetched_files == 0 and report.wal_records == 5
        assert_byte_identical(source_path, mirror_path)
        # Appending again moves only the new tail.
        writer.add_hyperedge(random_members(writer.hypergraph, rng))
        report = mirror.sync()
        assert report.wal_records == 1
        assert_byte_identical(source_path, mirror_path)

    def test_noop_sync_reports_unchanged(self, source_path, mirror_path):
        mirror = StoreMirror(LocalReplicationSource(source_path), mirror_path)
        mirror.sync()
        report = mirror.sync()
        assert not report.changed and report.wal_records == 0

    def test_compaction_delta_reuses_unchanged_shards(
        self, source_path, mirror_path, writer
    ):
        mirror = StoreMirror(LocalReplicationSource(source_path), mirror_path)
        mirror.sync()
        # Remove-only updates keep the row partition, so compaction
        # rewrites every shard *name* but changes few shard *contents* —
        # the delta sync must satisfy the unchanged ones locally.
        writer.remove_hyperedge(3)
        writer.compact()
        report = mirror.sync()
        assert report.full_sync
        assert report.reused_files > 0
        assert_byte_identical(source_path, mirror_path)
        assert mirror.generation == 1

    def test_updates_and_compaction_match_pipeline_oracle(
        self, source_path, mirror_path, writer
    ):
        """The acceptance loop: mirror across live updates and a
        compaction, cross-checking served metrics against a from-scratch
        engine on the writer's current hypergraph."""
        mirror = StoreMirror(LocalReplicationSource(source_path), mirror_path)
        rng = make_rng(11)
        for phase in range(3):
            for _ in range(3):
                writer.add_hyperedge(random_members(writer.hypergraph, rng))
            if phase == 1:
                writer.remove_hyperedge(int(rng.integers(writer.hypergraph.num_edges)))
            if phase == 2:
                writer.compact()
            mirror.sync()
            assert_byte_identical(source_path, mirror_path)
            served = PersistentQueryEngine.open(
                mirror_path, read_only=True, sharded=True
            )
            oracle = QueryEngine(writer.hypergraph)
            for s in (1, 2, 3):
                assert served.line_graph(s) == oracle.line_graph(s), (phase, s)
                assert served.metric_by_hyperedge(s, "pagerank") == pytest.approx(
                    oracle.metric_by_hyperedge(s, "pagerank")
                ), (phase, s)


class _KilledSync(Exception):
    """Stands in for SIGKILL: aborts a sync at an arbitrary point."""


class _FlakySource:
    """A replication source that dies after ``fail_after`` fetch chunks."""

    def __init__(self, inner, fail_after):
        self._inner = inner
        self.fail_after = fail_after
        self.fetches = 0

    def repl_manifest(self):
        return self._inner.repl_manifest()

    def repl_wal(self, generation, after_seq):
        if self.fail_after is not None and self.fetches >= self.fail_after:
            raise _KilledSync()
        return self._inner.repl_wal(generation, after_seq)

    def repl_fetch(self, name, generation, offset, length):
        self.fetches += 1
        if self.fail_after is not None and self.fetches > self.fail_after:
            raise _KilledSync()
        return self._inner.repl_fetch(name, generation, offset, length)


class TestCrashSafety:
    @pytest.mark.parametrize("fail_after", [0, 1, 3, 5])
    def test_killed_bootstrap_recovers_on_next_sync(
        self, source_path, mirror_path, fail_after
    ):
        source = LocalReplicationSource(source_path)
        flaky = _FlakySource(source, fail_after)
        mirror = StoreMirror(flaky, mirror_path)
        with pytest.raises(_KilledSync):
            mirror.sync()
        # Nothing was installed: no manifest, so no reader opens it.
        assert not IndexStore.exists(mirror_path)
        # A fresh mirror process finishes the job.
        resumed = StoreMirror(source, mirror_path)
        resumed.sync()
        assert_byte_identical(source_path, mirror_path)

    @pytest.mark.parametrize("fail_after", [0, 2, 4])
    def test_killed_delta_sync_keeps_serving_the_old_state(
        self, source_path, mirror_path, writer, fail_after
    ):
        """A sync killed mid-fetch never corrupts the mirror: the previous
        generation keeps serving, and the next sync completes the delta."""
        source = LocalReplicationSource(source_path)
        mirror = StoreMirror(source, mirror_path)
        mirror.sync()
        before = live_store_files(mirror_path)
        old_answers = PersistentQueryEngine.open(
            mirror_path, read_only=True
        ).metric_by_hyperedge(2, "pagerank")

        writer.add_hyperedge([0, 1, 2, 3])
        writer.compact()
        flaky = _FlakySource(source, fail_after)
        killed = StoreMirror(flaky, mirror_path)
        with pytest.raises(_KilledSync):
            killed.sync()
        # The mirror still serves its previous, consistent state (staged
        # next-generation files may linger; readers never see them).
        assert live_store_files(mirror_path) == before
        survivor = PersistentQueryEngine.open(mirror_path, read_only=True)
        assert survivor.metric_by_hyperedge(2, "pagerank") == pytest.approx(old_answers)
        # The next sync (fresh process) completes and converges.
        StoreMirror(source, mirror_path).sync()
        assert_byte_identical(source_path, mirror_path)

    def test_source_wal_shrink_triggers_full_log_rewrite(
        self, source_path, mirror_path, writer
    ):
        """A restarted writer can legitimately shrink the log (torn-tail
        truncation); the mirror detects the cursor overrun and rewrites."""
        source = LocalReplicationSource(source_path)
        mirror = StoreMirror(source, mirror_path)
        writer.add_hyperedge([0, 1, 2])
        writer.add_hyperedge([1, 2, 3])
        mirror.sync()
        assert mirror.wal_seq == 2
        # Simulate a writer restart that truncated the whole log and then
        # logged one fresh record.
        writer.store.wal.truncate()
        writer.store._records = []
        writer.add_hyperedge([2, 3, 4])
        report = mirror.sync()
        assert report.changed
        assert mirror.wal_seq == 1
        assert_byte_identical(source_path, mirror_path)

    def test_sync_retries_through_a_racing_compaction(
        self, source_path, mirror_path, writer
    ):
        """A compaction landing between the manifest read and the fetches
        answers ReplicationStaleError; sync() restarts and converges."""
        source = LocalReplicationSource(source_path)

        class _CompactingSource(_FlakySource):
            def __init__(self, inner):
                super().__init__(inner, None)
                self.compacted = False

            def repl_fetch(self, name, generation, offset, length):
                if not self.compacted:
                    self.compacted = True
                    writer.add_hyperedge([0, 1, 2, 3])
                    writer.compact()  # sweeps the pinned generation
                return self._inner.repl_fetch(name, generation, offset, length)

        mirror = StoreMirror(_CompactingSource(source), mirror_path)
        report = mirror.sync()
        assert report.full_sync
        assert_byte_identical(source_path, mirror_path)
        assert mirror.generation == 1

    def test_sync_gives_up_after_bounded_retries(self, source_path, mirror_path):
        source = LocalReplicationSource(source_path)

        class _AlwaysStale(_FlakySource):
            def repl_manifest(self):
                raise ReplicationStaleError("the source never holds still")

        mirror = StoreMirror(_AlwaysStale(source, None), mirror_path, sync_retries=3)
        with pytest.raises(ReplicationError, match="3 attempts"):
            mirror.sync()


class _CursorOnlySource:
    """A source whose legacy ``repl_wal`` op is forbidden — proves a sync
    was served by the byte-offset cursor alone (docs/PROTOCOL.md)."""

    def __init__(self, inner):
        self._inner = inner

    def repl_manifest(self):
        return self._inner.repl_manifest()

    def repl_wal(self, generation, after_seq):
        raise AssertionError("legacy repl_wal used despite a cursor-capable source")

    def repl_wal_suffix(self, generation, after_bytes, next_seq):
        return self._inner.repl_wal_suffix(generation, after_bytes, next_seq)

    def repl_fetch(self, name, generation, offset, length):
        return self._inner.repl_fetch(name, generation, offset, length)


class TestByteOffsetCursor:
    """The protocol v2 WAL cursor: raw suffix reads after (generation,
    byte offset), with rebase on any divergence under the cursor."""

    def test_suffix_payload_reads_only_the_tail(self, source_path, writer):
        from repro.store.replication import wal_suffix_payload

        writer.add_hyperedge([0, 1, 2])
        writer.add_hyperedge([1, 2, 3])
        wal_file = os.path.join(source_path, WAL_NAME)
        log = Path(wal_file).read_bytes()

        full = wal_suffix_payload(source_path, 0, 0, 1, raw=True)
        assert not full["rebase"]
        assert full["count"] == 2 and full["next_seq"] == 3
        assert full["data"] == log and full["end_offset"] == len(log)

        first_line_end = log.index(b"\n") + 1
        tail = wal_suffix_payload(source_path, 0, first_line_end, 2, raw=True)
        assert not tail["rebase"]
        assert tail["count"] == 1 and tail["data"] == log[first_line_end:]

        done = wal_suffix_payload(source_path, 0, len(log), 3, raw=True)
        assert not done["rebase"] and done["count"] == 0 and done["data"] == b""

    def test_suffix_payload_rebases_on_divergence(self, source_path, writer):
        from repro.store.replication import wal_suffix_payload

        writer.add_hyperedge([0, 1, 2])
        log = Path(source_path, WAL_NAME).read_bytes()
        # Cursor past the file (the log shrank under the reader).
        assert wal_suffix_payload(source_path, 0, len(log) + 10, 2)["rebase"]
        # Sequence mismatch at the cursor (the tail was rewritten).
        assert wal_suffix_payload(source_path, 0, 0, 7)["rebase"]
        # Mid-line offset: the bytes there do not parse as a record start.
        assert wal_suffix_payload(source_path, 0, 3, 1)["rebase"]

    def test_suffix_payload_rejects_stale_generation(self, source_path, writer):
        from repro.store.replication import wal_suffix_payload

        writer.add_hyperedge([0, 1, 2])
        writer.compact()
        with pytest.raises(ReplicationStaleError, match="generation"):
            wal_suffix_payload(source_path, 0, 0, 1)

    def test_cursor_delta_appends_raw_suffix(self, source_path, mirror_path, writer):
        """Intact polls are served by suffix appends alone — the legacy
        record-replay op is never consulted."""
        source = _CursorOnlySource(LocalReplicationSource(source_path))
        mirror = StoreMirror(source, mirror_path)
        mirror.sync()
        rng = make_rng(5)
        for _ in range(3):
            writer.add_hyperedge(random_members(writer.hypergraph, rng))
        report = mirror.sync()
        assert not report.full_sync and report.wal_records == 3
        assert mirror.wal_seq == 3
        assert_byte_identical(source_path, mirror_path)
        # An idle poll moves nothing.
        assert not mirror.sync().changed
        writer.add_hyperedge(random_members(writer.hypergraph, rng))
        assert mirror.sync().wal_records == 1
        assert_byte_identical(source_path, mirror_path)

    def test_cursor_rebases_when_the_log_shrinks(
        self, source_path, mirror_path, writer
    ):
        """A writer restart that truncated the log leaves the mirror's
        byte cursor past end-of-file; the next cursor poll detects the
        overrun, rebases to offset 0 and rewrites the local log."""
        source = _CursorOnlySource(LocalReplicationSource(source_path))
        mirror = StoreMirror(source, mirror_path)
        writer.add_hyperedge([0, 1, 2])
        writer.add_hyperedge([1, 2, 3])
        writer.add_hyperedge([2, 3, 4])
        mirror.sync()
        assert mirror.wal_seq == 3
        # Restarted writer: whole log truncated, then one fresh record —
        # strictly shorter than the mirror's byte cursor.
        writer.store.wal.truncate()
        writer.store._records = []
        writer.add_hyperedge([3, 4, 5])
        report = mirror.sync()
        assert report.changed
        assert mirror.wal_seq == 1
        assert_byte_identical(source_path, mirror_path)

    def test_cursor_rebases_when_the_tail_diverges(
        self, source_path, mirror_path, writer
    ):
        """Same-length log whose records differ under the cursor: the CRC
        and sequence checks refuse the suffix and force the rewrite."""
        source = _CursorOnlySource(LocalReplicationSource(source_path))
        mirror = StoreMirror(source, mirror_path)
        writer.add_hyperedge([0, 1, 2])
        mirror.sync()
        assert mirror.wal_seq == 1
        writer.store.wal.truncate()
        writer.store._records = []
        writer.add_hyperedge([5, 6, 7])  # fresh record, same seq number
        writer.add_hyperedge([6, 7, 8])
        report = mirror.sync()
        assert report.changed
        assert mirror.wal_seq == 2
        assert_byte_identical(source_path, mirror_path)

    def test_legacy_source_without_cursor_still_syncs(
        self, source_path, mirror_path, writer
    ):
        """A pre-v2 source (no repl_wal_suffix attribute) is served by the
        original record-replay path, byte-identically."""
        source = _FlakySource(LocalReplicationSource(source_path), None)
        assert not hasattr(source, "repl_wal_suffix")
        mirror = StoreMirror(source, mirror_path)
        mirror.sync()
        rng = make_rng(9)
        for _ in range(3):
            writer.add_hyperedge(random_members(writer.hypergraph, rng))
        report = mirror.sync()
        assert not report.full_sync and report.wal_records == 3
        assert_byte_identical(source_path, mirror_path)
