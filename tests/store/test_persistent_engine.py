"""PersistentQueryEngine and the QueryEngine.from_store wiring."""

import numpy as np
import pytest

from repro.core.pipeline import SLinePipeline
from repro.engine.engine import QueryEngine
from repro.store.format import FingerprintMismatchError
from repro.store.persistent import PersistentQueryEngine
from repro.store.store import IndexStore
from repro.utils.validation import ValidationError


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    path = tmp_path / "idx"
    IndexStore.build(community_hypergraph, path, num_shards=4)
    return path


class TestOpenAndServe:
    @pytest.mark.parametrize("sharded", [False, True])
    def test_matches_fresh_engine(self, store_path, community_hypergraph, sharded):
        engine = PersistentQueryEngine.open(store_path, sharded=sharded)
        fresh = QueryEngine(community_hypergraph)
        sweep = engine.sweep(range(1, 9), metrics=("connected_components",))
        expected = fresh.sweep(range(1, 9), metrics=("connected_components",))
        for s in range(1, 9):
            assert sweep.line_graphs[s] == expected.line_graphs[s]
            assert sweep.num_components(s) == expected.num_components(s)
        # Warm open: the wedge-enumeration pass never ran.
        assert engine.stats().index_builds == 0

    def test_open_with_explicit_hypergraph(self, store_path, community_hypergraph):
        engine = PersistentQueryEngine.open(store_path, hypergraph=community_hypergraph)
        assert engine.hypergraph is community_hypergraph

    def test_open_rejects_wrong_hypergraph(self, store_path, paper_example):
        with pytest.raises(FingerprintMismatchError):
            PersistentQueryEngine.open(store_path, hypergraph=paper_example)

    def test_build_classmethod(self, community_hypergraph, tmp_path):
        engine = PersistentQueryEngine.build(
            community_hypergraph, tmp_path / "fresh", num_shards=3
        )
        assert engine.line_graph(2) == QueryEngine(community_hypergraph).line_graph(2)
        assert IndexStore.exists(tmp_path / "fresh")


class TestDurability:
    def test_updates_survive_reopen(self, store_path, community_hypergraph):
        engine = PersistentQueryEngine.open(store_path)
        new_id = engine.add_hyperedge([0, 1, 2, 50], name="session-edge")
        engine.remove_hyperedge(4)
        expected = {
            s: engine.line_graph(s).edge_set() for s in range(1, 6)
        }
        # "New process": reopen purely from disk.
        reloaded = PersistentQueryEngine.open(store_path, sharded=True)
        assert reloaded.hypergraph.num_edges == community_hypergraph.num_edges + 1
        # Unlabelled hypergraphs stay unlabelled: replay matches the live engine.
        assert reloaded.hypergraph.edge_name(new_id) == engine.hypergraph.edge_name(
            new_id
        )
        assert reloaded.hypergraph.edge_size(4) == 0
        for s in range(1, 6):
            assert reloaded.line_graph(s).edge_set() == expected[s], s
        assert reloaded.fingerprint() == engine.fingerprint()

    def test_compact_keeps_serving(self, store_path):
        engine = PersistentQueryEngine.open(store_path)
        engine.add_hyperedge([3, 4, 5])
        before = engine.line_graph(2)
        engine.compact()
        assert engine.store.num_wal_records() == 0
        assert engine.line_graph(2) == before
        assert PersistentQueryEngine.open(store_path).line_graph(2) == before


class TestFromStore:
    def test_creates_when_asked(self, community_hypergraph, tmp_path):
        path = tmp_path / "auto"
        with pytest.raises(ValidationError, match="create=True"):
            QueryEngine.from_store(path, hypergraph=community_hypergraph)
        engine = QueryEngine.from_store(
            path, hypergraph=community_hypergraph, create=True
        )
        assert isinstance(engine, PersistentQueryEngine)
        assert IndexStore.exists(path)

    def test_reuses_existing_snapshot(self, store_path, community_hypergraph):
        engine = QueryEngine.from_store(store_path, hypergraph=community_hypergraph)
        assert engine.stats().index_builds == 0
        assert engine.line_graph(3) == QueryEngine(community_hypergraph).line_graph(3)

    def test_mismatch_raises_by_default(self, store_path, paper_example):
        with pytest.raises(FingerprintMismatchError):
            QueryEngine.from_store(store_path, hypergraph=paper_example)

    def test_mismatch_rebuilds_when_allowed(self, store_path, paper_example):
        engine = QueryEngine.from_store(
            store_path, hypergraph=paper_example, on_mismatch="rebuild"
        )
        assert engine.line_graph(2) == QueryEngine(paper_example).line_graph(2)
        # The snapshot now describes the new hypergraph.
        reopened = IndexStore.open(store_path)
        assert reopened.manifest.fingerprint == paper_example.fingerprint()

    def test_invalid_on_mismatch_rejected(self, store_path, community_hypergraph):
        with pytest.raises(ValidationError, match="on_mismatch"):
            QueryEngine.from_store(
                store_path, hypergraph=community_hypergraph, on_mismatch="ignore"
            )


class TestIndexInjection:
    def test_injected_index_must_match(self, community_hypergraph, paper_example):
        from repro.engine.index import OverlapIndex

        wrong = OverlapIndex.build(paper_example)
        with pytest.raises(ValidationError, match="does not describe"):
            QueryEngine(community_hypergraph, index=wrong)

    def test_injected_index_is_served(self, community_hypergraph):
        from repro.engine.index import OverlapIndex

        index = OverlapIndex.build(community_hypergraph)
        engine = QueryEngine(community_hypergraph, index=index)
        assert engine.index is index
        assert engine.stats().index_builds == 0


class TestPipelineStorePath:
    def test_persist_then_reuse(self, community_hypergraph, tmp_path):
        path = str(tmp_path / "pipe-idx")
        baseline = SLinePipeline(metrics=("connected_components",)).run(
            community_hypergraph, 2
        )
        first = SLinePipeline(
            metrics=("connected_components",), store_path=path
        )
        r1 = first.run(community_hypergraph, 2)
        assert r1.line_graph == baseline.line_graph
        assert np.array_equal(
            r1.metrics["connected_components"],
            baseline.metrics["connected_components"],
        )
        # A second pipeline (fresh process) opens the snapshot: no rebuild.
        second = SLinePipeline(metrics=("connected_components",), store_path=path)
        r2 = second.run(community_hypergraph, 3)
        baseline3 = SLinePipeline(metrics=("connected_components",)).run(
            community_hypergraph, 3
        )
        assert r2.line_graph == baseline3.line_graph
        assert second._store_engine.stats().index_builds == 0

    def test_store_path_excludes_engine_and_toplexes(self, community_hypergraph, tmp_path):
        engine = QueryEngine(community_hypergraph)
        with pytest.raises(ValidationError, match="not both"):
            SLinePipeline(engine=engine, store_path=str(tmp_path / "x"))
        with pytest.raises(ValidationError, match="compute_toplexes"):
            SLinePipeline(compute_toplexes=True, store_path=str(tmp_path / "x"))
