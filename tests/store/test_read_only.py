"""Read-only store handles: write rejection and non-destructive recovery."""

import os

import pytest

from repro.store.format import ReadOnlyStoreError, WAL_NAME
from repro.store.persistent import PersistentQueryEngine
from repro.store.store import IndexStore


@pytest.fixture
def store(community_hypergraph, tmp_path):
    return IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)


class TestReadOnlyOpen:
    def test_writes_rejected_with_clear_error(self, store):
        handle = IndexStore.open(store.path, read_only=True)
        with pytest.raises(ReadOnlyStoreError, match="read-only"):
            handle.append_add(0, [0, 1], [], [], fingerprint="fp")
        with pytest.raises(ReadOnlyStoreError, match="read-only"):
            handle.append_remove(0)
        with pytest.raises(ReadOnlyStoreError, match="read-only"):
            handle.compact()
        with pytest.raises(ReadOnlyStoreError, match="read-only"):
            with handle.batch():
                pass
        # Nothing reached the log.
        assert handle.num_wal_records() == 0
        assert IndexStore.open(store.path).num_wal_records() == 0

    def test_reads_still_work(self, store, community_hypergraph):
        handle = IndexStore.open(store.path, read_only=True)
        assert handle.load_hypergraph() == community_hypergraph
        index = handle.load_index()
        assert index.num_pairs == store.manifest.num_pairs
        assert handle.sharded_index().line_graph(2) == index.line_graph(2)

    def test_replays_wal_without_truncating_torn_tail(self, store):
        """A live writer may still be appending the torn record: a reader
        must replay the valid prefix but never rewrite the file."""
        writer = PersistentQueryEngine(store)
        writer.add_hyperedge([0, 1, 2])
        wal_path = os.path.join(store.path, WAL_NAME)
        with open(wal_path, "ab") as f:
            f.write(b'2\t00000000\t{"op": "add"')  # in-flight partial append
        size_before = os.path.getsize(wal_path)
        handle = IndexStore.open(store.path, read_only=True)
        assert handle.recovered_torn_tail
        assert handle.num_wal_records() == 1  # valid prefix served
        assert os.path.getsize(wal_path) == size_before  # untouched
        # A writable open afterwards still truncates as usual.
        writable = IndexStore.open(store.path)
        assert writable.recovered_torn_tail
        assert os.path.getsize(wal_path) < size_before

    def test_stale_generation_wal_is_ignored_not_deleted(self, store):
        """A log stamped with another generation is skipped read-only (the
        snapshot alone is served) but left on disk for the writer."""
        writer = PersistentQueryEngine(store)
        writer.add_hyperedge([0, 1, 2])
        wal_path = os.path.join(store.path, WAL_NAME)
        size_before = os.path.getsize(wal_path)
        # Simulate the read race: manifest generation moved ahead.
        store.manifest.generation += 1
        try:
            handle = IndexStore(store.path, manifest=store.manifest, read_only=True)
            assert handle.discarded_stale_wal
            assert handle.num_wal_records() == 0
            assert os.path.getsize(wal_path) == size_before
        finally:
            store.manifest.generation -= 1

    def test_read_only_engine_rejects_updates_before_mutating(self, store):
        engine = PersistentQueryEngine.open(store.path, read_only=True)
        n_edges = engine.hypergraph.num_edges
        graph_before = engine.line_graph(2)
        with pytest.raises(ReadOnlyStoreError):
            engine.add_hyperedge([0, 1, 2])
        with pytest.raises(ReadOnlyStoreError):
            engine.remove_hyperedge(0)
        with pytest.raises(ReadOnlyStoreError):
            engine.compact()
        # The in-memory view was never half-updated.
        assert engine.hypergraph.num_edges == n_edges
        assert engine.line_graph(2) == graph_before

    def test_state_token_tracks_appends_and_compactions(self, store):
        token0 = IndexStore.state_token(store.path)
        writer = PersistentQueryEngine(store)
        writer.add_hyperedge([0, 1, 2])
        token1 = IndexStore.state_token(store.path)
        assert token1 != token0
        assert token1[0] == token0[0]  # same generation, longer WAL
        writer.compact()
        token2 = IndexStore.state_token(store.path)
        assert token2[0] == token0[0] + 1  # compaction bumped the generation
        assert store.current_state_token() == token2
