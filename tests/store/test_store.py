"""IndexStore lifecycle: build/open, durable updates, crash recovery, compaction."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.engine.engine import QueryEngine
from repro.engine.index import OverlapIndex
from repro.store.format import (
    FingerprintMismatchError,
    StoreFormatError,
    WAL_NAME,
)
from repro.store.store import IndexStore
from repro.utils.rng import make_rng


@pytest.fixture
def store(community_hypergraph, tmp_path):
    return IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)


def random_members(h, rng, size=5):
    return np.unique(rng.choice(h.num_vertices, size=size, replace=False)).tolist()


def updated_engine(store, n_adds=3, n_removes=2, seed=3):
    """Apply a deterministic update mix through a persistent engine."""
    from repro.store.persistent import PersistentQueryEngine

    engine = PersistentQueryEngine(store)
    rng = make_rng(seed)
    for _ in range(n_adds):
        engine.add_hyperedge(random_members(engine.hypergraph, rng))
    for _ in range(n_removes):
        engine.remove_hyperedge(int(rng.integers(engine.hypergraph.num_edges)))
    return engine


class TestBuildOpen:
    def test_build_then_open_round_trips(self, store, community_hypergraph):
        reopened = IndexStore.open(store.path)
        assert reopened.manifest.fingerprint == community_hypergraph.fingerprint()
        oracle = OverlapIndex.build(community_hypergraph)
        loaded = reopened.load_index()
        for s in range(1, oracle.max_weight + 1):
            assert loaded.line_graph(s) == oracle.line_graph(s), s
        assert reopened.load_hypergraph() == community_hypergraph

    def test_open_validates_fingerprint(self, store, paper_example):
        with pytest.raises(FingerprintMismatchError):
            IndexStore.open(store.path, fingerprint=paper_example.fingerprint())

    def test_open_missing_store(self, tmp_path):
        with pytest.raises(StoreFormatError):
            IndexStore.open(tmp_path / "nowhere")

    def test_build_without_hypergraph_copy(self, paper_example, tmp_path):
        store = IndexStore.build(
            paper_example, tmp_path / "idx", save_hypergraph=False
        )
        with pytest.raises(StoreFormatError, match="without its hypergraph"):
            store.load_hypergraph()
        assert not store.info()["has_hypergraph"]


class TestDurableUpdates:
    def test_wal_replays_into_current_state(self, store, community_hypergraph):
        engine = updated_engine(store)
        # A brand-new process: open the store and compare every s against a
        # from-scratch engine over the updated hypergraph.
        reopened = IndexStore.open(store.path)
        assert reopened.num_wal_records() == 5
        assert reopened.current_fingerprint() == engine.fingerprint()
        h = reopened.load_hypergraph()
        assert h.fingerprint() == engine.fingerprint()
        oracle = QueryEngine(h)
        loaded = reopened.load_index()
        sharded = reopened.sharded_index()
        for s in range(1, max(loaded.max_weight, 1) + 1):
            expected = oracle.line_graph(s)
            assert loaded.line_graph(s) == expected, s
            assert sharded.line_graph(s) == expected, s

    def test_crash_mid_append_recovers_prefix(self, store, community_hypergraph):
        engine = updated_engine(store, n_adds=2, n_removes=1)
        fp_before = engine.fingerprint()
        wal_path = os.path.join(store.path, WAL_NAME)
        with open(wal_path, "ab") as handle:
            handle.write(b'4\t00000000\t{"op": "add", "edge_id"')  # torn append
        reopened = IndexStore.open(store.path)
        assert reopened.recovered_torn_tail
        assert reopened.num_wal_records() == 3
        assert reopened.current_fingerprint() == fp_before
        # The acknowledged prefix fully survives.
        oracle = QueryEngine(reopened.load_hypergraph())
        loaded = reopened.load_index()
        for s in range(1, max(loaded.max_weight, 1) + 1):
            assert loaded.line_graph(s) == oracle.line_graph(s), s

    def test_subprocess_killed_mid_append_recovers(self, store):
        """A real process dying mid-write leaves a recoverable store."""
        script = (
            "import os, sys\n"
            "from repro.store import IndexStore\n"
            "from repro.store.wal import _frame\n"
            "store = IndexStore.open(sys.argv[1])\n"
            "store.append_remove(0, fingerprint='fp-after-remove-0')\n"
            "store.append_remove(1, fingerprint='fp-after-remove-1')\n"
            "frame = _frame(3, {'op': 'remove', 'edge_id': 2})\n"
            "with open(store.wal.path, 'ab') as handle:\n"
            "    handle.write(frame[: len(frame) // 2])\n"
            "    handle.flush()\n"
            "    os.fsync(handle.fileno())\n"
            "os._exit(9)\n"  # die without cleanup, torn record on disk
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script, store.path], env=env, capture_output=True
        )
        assert proc.returncode == 9, proc.stderr.decode()
        reopened = IndexStore.open(store.path)
        assert reopened.recovered_torn_tail
        assert [r.edge_id for r in reopened.wal_records] == [0, 1]
        assert reopened.current_fingerprint() == "fp-after-remove-1"


class TestCompaction:
    def test_compact_folds_wal_and_bumps_generation(self, store):
        engine = updated_engine(store)
        fp = engine.fingerprint()
        oracle = QueryEngine(engine.hypergraph)
        manifest = store.compact()
        assert manifest.generation == 1
        assert store.num_wal_records() == 0
        assert manifest.fingerprint == fp
        assert manifest.provenance["compacted_wal_records"] == 5
        reopened = IndexStore.open(store.path, fingerprint=fp)
        loaded = reopened.load_index()
        for s in range(1, max(loaded.max_weight, 1) + 1):
            assert loaded.line_graph(s) == oracle.line_graph(s), s

    def test_old_generation_files_removed(self, store):
        old_files = set(os.listdir(os.path.join(store.path, "shards")))
        updated_engine(store, n_adds=1, n_removes=0)
        store.compact()
        new_files = set(os.listdir(os.path.join(store.path, "shards")))
        assert not (old_files & new_files)
        assert all(name.startswith("g1-") for name in new_files)
        # The superseded generation's edge-size file is swept too.
        size_files = [
            n for n in os.listdir(store.path) if n.endswith("edge_sizes.npy")
        ]
        assert size_files == [store.manifest.edge_sizes_file]

    def test_interleaved_update_compact_cycles(self, store, community_hypergraph):
        """Updates and compactions interleaved stay faithful to the oracle."""
        from repro.store.persistent import PersistentQueryEngine

        rng = make_rng(17)
        engine = PersistentQueryEngine(store)
        for cycle in range(3):
            for _ in range(2):
                engine.add_hyperedge(random_members(engine.hypergraph, rng))
            engine.remove_hyperedge(int(rng.integers(engine.hypergraph.num_edges)))
            store.compact()
            assert store.num_wal_records() == 0
            assert store.manifest.generation == cycle + 1
            # A cold open after every cycle matches a from-scratch engine.
            reopened = IndexStore.open(store.path)
            oracle = QueryEngine(reopened.load_hypergraph())
            sharded = reopened.sharded_index()
            for s in (1, 2, 3, 5):
                assert sharded.line_graph(s) == oracle.line_graph(s), (cycle, s)

    def test_reshard_on_compact(self, store):
        manifest = store.compact(num_shards=9)
        assert len(manifest.shards) == 9
        assert sum(i.num_pairs for i in manifest.shards) == manifest.num_pairs


class TestCompactionCrashWindows:
    """Crashes at every point inside compact() must leave a correct store."""

    def test_crash_before_wal_truncate_discards_stale_log(self, store):
        """Manifest swapped, WAL left behind: records are stale by their
        generation stamp and must be discarded, never double-applied."""
        engine = updated_engine(store, n_adds=2, n_removes=1)
        oracle = QueryEngine(engine.hypergraph)
        wal_path = os.path.join(store.path, WAL_NAME)
        stale_log = Path(wal_path).read_bytes()
        store.compact()
        # Simulate dying between the manifest swap and the truncate.
        with open(wal_path, "wb") as handle:
            handle.write(stale_log)
        reopened = IndexStore.open(store.path)
        assert reopened.discarded_stale_wal
        assert reopened.num_wal_records() == 0
        assert os.path.getsize(wal_path) == 0  # physically truncated
        loaded = reopened.load_index()
        for s in range(1, max(loaded.max_weight, 1) + 1):
            assert loaded.line_graph(s) == oracle.line_graph(s), s
        assert reopened.load_hypergraph().fingerprint() == engine.fingerprint()

    def test_crash_after_hypergraph_swap_before_manifest(self, store):
        """Updated hypergraph.npz in place, old manifest + live WAL: the
        fingerprint check must recognise the copy as current and skip the
        replay (no double-applied edges)."""
        from repro.store.store import _save_hypergraph_atomic

        engine = updated_engine(store, n_adds=2, n_removes=0)
        current = engine.hypergraph
        _save_hypergraph_atomic(
            current, os.path.join(store.path, "hypergraph.npz")
        )
        reopened = IndexStore.open(store.path)
        assert reopened.num_wal_records() == 2  # WAL still authoritative
        recovered = reopened.load_hypergraph()
        assert recovered.num_edges == current.num_edges
        assert recovered.fingerprint() == current.fingerprint()

    def test_inconsistent_hypergraph_detected(self, store, paper_example):
        """A saved copy matching neither the base nor the current state is
        reported loudly instead of silently mis-replayed."""
        from repro.store.store import _save_hypergraph_atomic

        updated_engine(store, n_adds=1, n_removes=0)
        _save_hypergraph_atomic(
            paper_example, os.path.join(store.path, "hypergraph.npz")
        )
        reopened = IndexStore.open(store.path)
        with pytest.raises(Exception, match="inconsistent"):
            reopened.load_hypergraph()

    def test_sharded_engine_survives_its_own_compaction(self, store):
        """Compaction sweeps the old generation's files; a sharded engine
        must re-open against the new generation, not the unlinked mmaps."""
        from repro.store.persistent import PersistentQueryEngine

        engine = PersistentQueryEngine(store, sharded=True, max_resident_shards=1)
        engine.add_hyperedge([0, 1, 2, 3])
        before = {s: engine.line_graph(s) for s in (1, 2, 3)}
        engine.compact()
        engine._cache.clear()  # force re-reads through the (new) shards
        for s in (1, 2, 3):
            assert engine.line_graph(s) == before[s], s

    def test_rebuild_continues_generation_and_sweeps_orphans(
        self, store, paper_example
    ):
        updated_engine(store, n_adds=1, n_removes=0)
        store.compact()  # generation 1
        rebuilt = IndexStore.build(paper_example, store.path, num_shards=2)
        assert rebuilt.manifest.generation == 2
        shard_files = os.listdir(os.path.join(store.path, "shards"))
        assert shard_files and all(f.startswith("g2-") for f in shard_files)
        # The rebuilt store serves the new hypergraph.
        oracle = QueryEngine(paper_example)
        assert rebuilt.load_index().line_graph(2) == oracle.line_graph(2)
