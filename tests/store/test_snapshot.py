"""Snapshot format: round-trip fidelity, shard boundaries, manifest safety."""

import json
import os

import numpy as np
import pytest

from repro.engine.index import OverlapIndex
from repro.store.format import (
    FORMAT_VERSION,
    Manifest,
    StoreFormatError,
    read_manifest,
)
from repro.store.snapshot import (
    load_shard,
    materialize_index,
    write_snapshot,
)


@pytest.fixture
def index(community_hypergraph):
    return OverlapIndex.build(community_hypergraph)


@pytest.fixture
def fingerprint(community_hypergraph):
    return community_hypergraph.fingerprint()


def assert_same_index(a: OverlapIndex, b: OverlapIndex) -> None:
    ea, wa = a.pairs_at_least(1)
    eb, wb = b.pairs_at_least(1)
    assert np.array_equal(ea, eb)
    assert np.array_equal(wa, wb)
    assert np.array_equal(a.edge_sizes, b.edge_sizes)


class TestRoundTrip:
    @pytest.mark.parametrize("num_shards", [1, 3, 8])
    def test_materialized_equals_oracle(self, index, fingerprint, tmp_path, num_shards):
        write_snapshot(index, tmp_path, fingerprint, num_shards=num_shards)
        back = materialize_index(tmp_path)
        assert_same_index(back, index)
        for s in range(1, index.max_weight + 1):
            assert back.line_graph(s) == index.line_graph(s)

    @pytest.mark.parametrize("num_shards", [1, 10])
    def test_tiny_hypergraph(self, paper_example, tmp_path, num_shards):
        # num_shards=10 > 4 hyperedges: blocked_partitions pads with empty
        # blocks and the snapshot must cope with empty shards.
        index = OverlapIndex.build(paper_example)
        write_snapshot(index, tmp_path, paper_example.fingerprint(), num_shards=num_shards)
        assert_same_index(materialize_index(tmp_path), index)

    def test_empty_index(self, empty_hypergraph, tmp_path):
        index = OverlapIndex.build(empty_hypergraph)
        write_snapshot(index, tmp_path, empty_hypergraph.fingerprint(), num_shards=2)
        back = materialize_index(tmp_path)
        assert back.num_pairs == 0
        assert back.num_hyperedges == empty_hypergraph.num_edges


class TestShardBoundaries:
    def test_blocks_cover_id_space_and_own_their_pairs(
        self, index, fingerprint, tmp_path
    ):
        manifest = write_snapshot(index, tmp_path, fingerprint, num_shards=5)
        # Boundaries are contiguous and cover 0..m.
        assert manifest.shards[0].row_start == 0
        assert manifest.shards[-1].row_stop == index.num_hyperedges
        for prev, cur in zip(manifest.shards, manifest.shards[1:]):
            assert cur.row_start == prev.row_stop
        # Every pair lives in the shard owning its smaller endpoint, and the
        # per-shard counts add up to the whole store.
        total = 0
        for info in manifest.shards:
            edges, weights = load_shard(tmp_path, info, mmap=False)
            total += weights.size
            if edges.size:
                assert int(edges[:, 0].min()) >= info.row_start
                assert int(edges[:, 0].max()) < info.row_stop
                # Shards preserve the ascending-weight invariant.
                assert np.all(np.diff(weights) >= 0)
                assert info.min_weight == int(weights[0])
                assert info.max_weight == int(weights[-1])
        assert total == manifest.num_pairs == index.num_pairs

    def test_shard_files_mmap_loadable(self, index, fingerprint, tmp_path):
        manifest = write_snapshot(index, tmp_path, fingerprint, num_shards=3)
        populated = [i for i in manifest.shards if i.num_pairs]
        assert populated, "community hypergraph must produce overlap pairs"
        edges, weights = load_shard(tmp_path, populated[0], mmap=True)
        assert isinstance(edges, np.memmap)
        assert isinstance(weights, np.memmap)


class TestManifestSafety:
    def test_manifest_records_provenance(self, index, fingerprint, tmp_path):
        manifest = write_snapshot(
            index, tmp_path, fingerprint, provenance={"source": "unit-test"}
        )
        raw = json.loads((tmp_path / "manifest.json").read_text())
        assert raw["format_version"] == FORMAT_VERSION
        assert raw["fingerprint"] == fingerprint
        assert raw["algorithm"] == "hashmap"
        assert raw["provenance"]["source"] == "unit-test"
        assert raw["provenance"]["builder"] == "repro.store"
        assert manifest.fingerprint == fingerprint

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(StoreFormatError, match="no snapshot manifest"):
            read_manifest(tmp_path)

    def test_corrupt_manifest_rejected(self, index, fingerprint, tmp_path):
        write_snapshot(index, tmp_path, fingerprint)
        (tmp_path / "manifest.json").write_text("{not json")
        with pytest.raises(StoreFormatError, match="not valid JSON"):
            read_manifest(tmp_path)

    def test_future_format_version_rejected(self, index, fingerprint, tmp_path):
        write_snapshot(index, tmp_path, fingerprint)
        raw = json.loads((tmp_path / "manifest.json").read_text())
        raw["format_version"] = FORMAT_VERSION + 1
        (tmp_path / "manifest.json").write_text(json.dumps(raw))
        with pytest.raises(StoreFormatError, match="format version"):
            read_manifest(tmp_path)

    def test_missing_shard_file_rejected(self, index, fingerprint, tmp_path):
        manifest = write_snapshot(index, tmp_path, fingerprint, num_shards=2)
        populated = [i for i in manifest.shards if i.num_pairs][0]
        os.remove(tmp_path / "shards" / populated.edges_file)
        with pytest.raises(StoreFormatError, match="shard file missing"):
            materialize_index(tmp_path)

    def test_pair_count_mismatch_rejected(self, index, fingerprint, tmp_path):
        write_snapshot(index, tmp_path, fingerprint, num_shards=1)
        raw = json.loads((tmp_path / "manifest.json").read_text())
        raw["shards"][0]["num_pairs"] += 1
        raw["num_pairs"] += 1
        (tmp_path / "manifest.json").write_text(json.dumps(raw))
        with pytest.raises(StoreFormatError, match="manifest records"):
            materialize_index(tmp_path)

    def test_unknown_manifest_fields_tolerated(self, index, fingerprint, tmp_path):
        """Same-version writers may add fields with defaults; readers skip them."""
        write_snapshot(index, tmp_path, fingerprint, num_shards=2)
        raw = json.loads((tmp_path / "manifest.json").read_text())
        raw["some_future_field"] = {"nested": True}
        for shard in raw["shards"]:
            shard["checksum"] = "abc123"
        (tmp_path / "manifest.json").write_text(json.dumps(raw))
        back = materialize_index(tmp_path)
        assert back.num_pairs == index.num_pairs


class TestGenerationIsolation:
    def test_new_generation_never_touches_live_files(
        self, index, fingerprint, tmp_path
    ):
        """Laying down generation G+1 must leave every file the live
        (generation G) manifest references intact — the crash-window
        guarantee compaction builds on."""
        import numpy as np
        from repro.store.snapshot import load_edge_sizes
        from repro.store.format import Manifest

        m0 = write_snapshot(index, tmp_path, fingerprint, num_shards=2)
        m0_manifest = Manifest.from_json(m0.to_json())  # frozen copy
        sizes0 = load_edge_sizes(tmp_path, m0_manifest).copy()
        shard0 = {
            i.edges_file for i in m0_manifest.shards
        } | {i.weights_file for i in m0_manifest.shards}

        # A differently-shaped index at generation 1 (one extra hyperedge).
        bigger = OverlapIndex(
            edges=index.pairs_at_least(1)[0],
            weights=index.pairs_at_least(1)[1],
            edge_sizes=np.append(index.edge_sizes, 3),
        )
        m1 = write_snapshot(bigger, tmp_path, "other-fp", num_shards=3, generation=1)
        assert m1.edge_sizes_file != m0_manifest.edge_sizes_file
        # Generation 0's files are all still present and unchanged.
        for name in shard0:
            assert (tmp_path / "shards" / name).is_file()
        assert np.array_equal(load_edge_sizes(tmp_path, m0_manifest), sizes0)
