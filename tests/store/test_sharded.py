"""ShardedIndex: out-of-core views must match the in-memory oracle exactly."""

import numpy as np
import pytest

from repro.engine.index import OverlapIndex, overlap_counts_for_members
from repro.store.sharded import ShardedIndex
from repro.store.snapshot import write_snapshot
from repro.utils.validation import ValidationError


@pytest.fixture
def oracle(community_hypergraph):
    return OverlapIndex.build(community_hypergraph)


@pytest.fixture
def store_path(oracle, community_hypergraph, tmp_path):
    write_snapshot(
        oracle, tmp_path, community_hypergraph.fingerprint(), num_shards=6
    )
    return tmp_path


class TestThresholdViews:
    def test_shape_matches_oracle(self, store_path, oracle):
        sharded = ShardedIndex(store_path)
        assert sharded.num_pairs == oracle.num_pairs
        assert sharded.num_hyperedges == oracle.num_hyperedges
        assert sharded.max_weight == oracle.max_weight
        assert np.array_equal(sharded.edge_sizes, oracle.edge_sizes)

    def test_line_graphs_match_for_all_s(self, store_path, oracle):
        sharded = ShardedIndex(store_path)
        for s in range(1, oracle.max_weight + 2):
            assert sharded.line_graph(s) == oracle.line_graph(s), s
            assert sharded.edge_count(s) == oracle.edge_count(s), s
            assert np.array_equal(sharded.active_vertices(s), oracle.active_vertices(s))

    def test_extract_is_the_service_alias(self, store_path, oracle):
        sharded = ShardedIndex(store_path)
        assert sharded.extract(2) == oracle.line_graph(2)

    def test_sweep_matches_oracle(self, store_path, oracle):
        sharded = ShardedIndex(store_path)
        swept = sharded.sweep(range(1, 9))
        for s in range(1, 9):
            assert swept[s] == oracle.line_graph(s), s

    def test_s_profile_matches(self, store_path, oracle):
        assert ShardedIndex(store_path).s_profile() == oracle.s_profile()


class TestLaziness:
    def test_no_shard_loaded_before_first_query(self, store_path):
        sharded = ShardedIndex(store_path)
        assert sharded.shard_loads == 0
        sharded.line_graph(1)
        assert sharded.shard_loads > 0

    def test_high_s_skips_light_shards(self, store_path, oracle):
        sharded = ShardedIndex(store_path)
        s = oracle.max_weight  # only shards whose max_weight reaches s load
        sharded.edge_count(s)
        candidates = [
            i for i in sharded.manifest.shards if i.num_pairs and i.max_weight >= s
        ]
        assert sharded.shard_loads == len(candidates)
        assert sharded.shard_loads < len(sharded.manifest.shards)

    def test_resident_cap_evicts_lru(self, store_path):
        sharded = ShardedIndex(store_path, max_resident_shards=2)
        sharded.line_graph(1)
        assert sharded.num_resident_shards <= 2
        # A second full pass must reload evicted shards.
        loads_after_first = sharded.shard_loads
        sharded.line_graph(1)
        assert sharded.shard_loads > loads_after_first

    def test_resident_cap_validated(self, store_path):
        with pytest.raises(ValidationError):
            ShardedIndex(store_path, max_resident_shards=0)


class TestOverlay:
    """WAL-overlay updates must track OverlapIndex update semantics exactly."""

    def _apply_script(self, h, index):
        """Add two hyperedges and remove two, mirroring on any index type."""
        rng = np.random.default_rng(11)
        ops = []
        for _ in range(2):
            members = np.unique(
                rng.choice(h.num_vertices, size=6, replace=False)
            ).astype(np.int64)
            pair_ids, pair_weights = overlap_counts_for_members(h, members)
            new_id = index.num_hyperedges
            index.add_hyperedge(new_id, members.size, pair_ids, pair_weights)
            ops.append(("add", members, pair_ids, pair_weights))
        for edge_id in (3, 7):
            index.remove_hyperedge(edge_id)
            ops.append(("remove", edge_id))
        return ops

    def test_updates_match_oracle(self, store_path, oracle, community_hypergraph):
        sharded = ShardedIndex(store_path)
        ops_a = self._apply_script(community_hypergraph, sharded)
        ops_b = self._apply_script(community_hypergraph, oracle)
        assert [op[0] for op in ops_a] == [op[0] for op in ops_b]
        assert sharded.num_pairs == oracle.num_pairs
        assert sharded.max_weight == oracle.max_weight
        for s in range(1, oracle.max_weight + 2):
            assert sharded.line_graph(s) == oracle.line_graph(s), s
            assert sharded.edge_count(s) == oracle.edge_count(s), s

    def test_max_weight_with_tombstones_is_cached(self, store_path, oracle):
        sharded = ShardedIndex(store_path)
        sharded.remove_hyperedge(2)
        oracle.remove_hyperedge(2)
        assert sharded.max_weight == oracle.max_weight
        loads = sharded.shard_loads
        assert sharded.max_weight == oracle.max_weight  # cached: no re-scan
        assert sharded.shard_loads == loads

    def test_remove_returns_pair_count(self, store_path, oracle):
        sharded = ShardedIndex(store_path)
        edge_id = 5
        assert sharded.remove_hyperedge(edge_id) == oracle.remove_hyperedge(edge_id)
        # Removing again is a no-op on pairs (the slot is tombstoned).
        assert sharded.remove_hyperedge(edge_id) == 0

    def test_add_validates_ids(self, store_path):
        sharded = ShardedIndex(store_path)
        with pytest.raises(ValidationError, match="new hyperedge ID"):
            sharded.add_hyperedge(0, 3, np.array([1]), np.array([1]))
        with pytest.raises(ValidationError, match="existing hyperedges"):
            sharded.add_hyperedge(
                sharded.num_hyperedges,
                3,
                np.array([sharded.num_hyperedges + 5]),
                np.array([1]),
            )

    def test_remove_validates_range(self, store_path):
        sharded = ShardedIndex(store_path)
        with pytest.raises(ValidationError, match="out of range"):
            sharded.remove_hyperedge(sharded.num_hyperedges)
