"""Shutdown drain semantics: pipelined frames get typed answers.

A client that pipelined requests into a server that is shutting down must
not see a silent EOF for frames the server already accepted: the drain
answers each with a typed ``E_UNAVAILABLE`` error (so the client can
retry elsewhere), honours a pipelined ``goodbye``, and is bounded so a
streaming peer cannot hold a handler thread past ``close()``.
"""

import socket
import threading
import time

import pytest

from repro.chaos import failpoints as fp
from repro.service import QueryService, SocketServer
from repro.service.transport.framing import (
    E_UNAVAILABLE,
    hello_request,
    recv_frame,
    send_frame,
)
from repro.store.store import IndexStore


@pytest.fixture(autouse=True)
def clean_failpoints():
    fp.reset()
    yield
    fp.reset()


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


@pytest.fixture
def writer(store_path):
    with QueryService(store_path, max_batch=16) as service:
        yield service


def _handshake(address):
    sock = socket.create_connection(address, timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    send_frame(sock, hello_request())
    hello = recv_frame(sock)
    assert hello["ok"], hello
    return sock


class TestShutdownDrain:
    def _close_during_request(self, server, sock, pipelined):
        """Send a slowed request + ``pipelined`` extras, then close().

        The ``service.execute`` delay failpoint keeps the first request
        in flight long enough for ``close()`` to set the stop flag, so
        the extras deterministically land in the drain path.
        """
        fp.activate("service.execute", "delay", value=400)
        send_frame(sock, {"op": "stats"})
        time.sleep(0.05)  # let the handler pick up the slowed request
        fp.deactivate("service.execute")
        for frame in pipelined:
            send_frame(sock, frame)
        closer = threading.Thread(target=server.close, daemon=True)
        closer.start()
        first = recv_frame(sock)
        assert first["ok"], first  # the in-flight request was served
        responses = [recv_frame(sock) for _ in pipelined]
        closer.join(timeout=15.0)
        assert not closer.is_alive(), "close() hung on the draining handler"
        return responses

    def test_pipelined_frames_get_typed_unavailable_answers(self, writer):
        server = SocketServer(writer, port=0, max_connections=4).start()
        sock = _handshake(server.address)
        try:
            responses = self._close_during_request(
                server, sock,
                [{"op": "metric", "s": 1}, {"op": "stats"}],
            )
            assert len(responses) == 2
            for response in responses:
                assert response is not None, "silent EOF instead of an answer"
                assert response["ok"] is False
                assert response["code"] == E_UNAVAILABLE
                assert "shutting down" in response["error"]
            assert recv_frame(sock) is None  # then EOF
        finally:
            sock.close()
            server.close()

    def test_pipelined_goodbye_is_honoured(self, writer):
        server = SocketServer(writer, port=0, max_connections=4).start()
        sock = _handshake(server.address)
        try:
            (response,) = self._close_during_request(
                server, sock, [{"op": "goodbye"}]
            )
            assert response == {"ok": True, "op": "goodbye"}
        finally:
            sock.close()
            server.close()

    def test_no_handler_threads_survive_close(self, writer):
        server = SocketServer(writer, port=0, max_connections=4).start()
        socks = [_handshake(server.address) for _ in range(3)]
        try:
            for sock in socks:
                send_frame(sock, {"op": "stats"})
                assert recv_frame(sock)["ok"]
            server.close()
            lingering = [
                t for t in threading.enumerate()
                if t.name.startswith(("repro-serve-", "repro-conn-"))
                and t.is_alive()
            ]
            assert lingering == [], lingering
        finally:
            for sock in socks:
                sock.close()

    def test_idle_connection_sees_clean_eof_on_close(self, writer):
        """An idle peer (no pipelined frames) gets EOF, not an error."""
        server = SocketServer(writer, port=0, max_connections=4).start()
        sock = _handshake(server.address)
        try:
            server.close()
            assert recv_frame(sock) is None
        finally:
            sock.close()
