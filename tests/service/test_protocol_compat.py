"""Cross-version interop: the v1/v2 compatibility matrix of docs/PROTOCOL.md.

The version policy under test: the hello handshake's ``protocol`` field
is frozen at 1 forever, version negotiation rides additive keys, and both
directions of version skew keep working — a v2 client against a v1-pinned
server and a v1-pinned client against a v2 server each settle on the JSON
data plane and serve identical answers to a native v2 pairing.
"""

import socket

import pytest

from repro.service import QueryService, ServiceClient, SocketServer
from repro.service.transport import (
    PROTOCOL_VERSION,
    PROTOCOL_VERSION_BINARY,
    RemoteServiceError,
)
from repro.service.transport.framing import (
    BINARY_FLAG,
    LENGTH_PREFIX,
    recv_frame,
    send_frame,
)
from repro.store.store import IndexStore


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


@pytest.fixture
def writer(store_path):
    with QueryService(store_path, max_batch=16) as service:
        yield service


@pytest.fixture
def v2_server(writer):
    with SocketServer(writer, port=0, max_connections=8) as srv:
        yield srv


@pytest.fixture
def v1_server(writer):
    """A server pinned to the JSON-only v1 data plane (pre-v2 build)."""
    with SocketServer(writer, port=0, max_connections=8, protocol_max=1) as srv:
        yield srv


def _oracle(service, s):
    return {
        int(k): float(v)
        for k, v in service.execute(
            {"op": "metric", "s": s, "metric": "connected_components"}
        )["values"].items()
    }


class TestCompatMatrix:
    def test_v2_client_against_v1_server(self, v1_server, writer):
        """A modern client downgrades to v1 and serves identical answers."""
        with ServiceClient(*v1_server.address, connect_retries=5) as client:
            assert client.protocol == PROTOCOL_VERSION
            assert client.compression is None
            assert client.metric(2, "connected_components") == _oracle(writer, 2)
            sweep = client.sweep(range(1, 5))
            assert set(sweep) == {"edge_counts", "active_counts"}
            # Replication helpers fall back to the JSON/base64 plane ...
            manifest = client.repl_manifest()
            name = manifest["files"][0]["name"]
            data = client.repl_fetch(name, manifest["generation"], 0, 64)
            assert isinstance(data["data"], bytes)
            # ... and the cursor op reports "not supported here".
            assert client.repl_wal_suffix(manifest["generation"], 0, 1) is None

    def test_v1_client_against_v2_server(self, v2_server, writer):
        """A pinned (pre-v2) client speaks v1 against a modern server."""
        with ServiceClient(
            *v2_server.address, connect_retries=5, protocol_max=1
        ) as client:
            assert client.protocol == PROTOCOL_VERSION
            assert client.metric(2, "connected_components") == _oracle(writer, 2)
            data = client.repl_fetch(client.repl_manifest()["files"][0]["name"], 0, 0, 64)
            assert isinstance(data["data"], bytes)

    def test_both_planes_serve_identical_answers(self, v2_server, writer):
        with ServiceClient(*v2_server.address, connect_retries=5) as v2_client:
            with ServiceClient(
                *v2_server.address, connect_retries=5, protocol_max=1
            ) as v1_client:
                assert v2_client.protocol == PROTOCOL_VERSION_BINARY
                assert v1_client.protocol == PROTOCOL_VERSION
                for s in (1, 2, 3):
                    assert v2_client.metric(s) == v1_client.metric(s)
                assert v2_client.sweep(range(1, 6)) == v1_client.sweep(range(1, 6))

    def test_columns_rejected_on_a_v1_connection(self, v2_server):
        """An explicit columns/raw request on a v1 connection is a typed error."""
        with ServiceClient(
            *v2_server.address, connect_retries=5, protocol_max=1
        ) as client:
            with pytest.raises(RemoteServiceError, match="binary data plane"):
                client.request({"op": "metric", "s": 2, "columns": True})
            # Nested inside a batch too — the sub-request cannot smuggle it.
            with pytest.raises(RemoteServiceError, match="binary data plane"):
                client.request(
                    {
                        "op": "batch",
                        "requests": [{"op": "metric", "s": 2, "columns": True}],
                    }
                )

    def test_compression_negotiated_off(self, v2_server):
        """compression=False keeps binary framing but no codec either way."""
        with ServiceClient(
            *v2_server.address, connect_retries=5, compression=False
        ) as client:
            assert client.protocol == PROTOCOL_VERSION_BINARY
            assert client.compression is None
            # The binary plane still works uncompressed.
            assert client.metric(2, "connected_components")
            stats = client.stats()
            assert stats["transport"]["negotiated"] == PROTOCOL_VERSION_BINARY
            assert stats["transport"]["compression"] is None

    def test_stats_reports_negotiated_protocols(self, v2_server):
        with ServiceClient(*v2_server.address, connect_retries=5) as v2_client:
            with ServiceClient(
                *v2_server.address, connect_retries=5, protocol_max=1
            ) as v1_client:
                # One served request guarantees the connection is past the
                # server's handshake bookkeeping before stats are read.
                assert v1_client.components(2) >= 1
                transport = v2_client.stats()["transport"]
                assert transport["supported"] == [1, 2]
                assert transport["negotiated"] == PROTOCOL_VERSION_BINARY
                assert transport["connections"]["by_protocol"] == {"1": 1, "2": 1}
                transport = v1_client.stats()["transport"]
                assert transport["negotiated"] == PROTOCOL_VERSION


class TestBadBinaryFrames:
    def _handshake(self, server):
        sock = socket.create_connection(server.address, timeout=5)
        send_frame(
            sock,
            {"op": "hello", "protocol": 1, "protocols": [1, 2], "compression": []},
        )
        response = recv_frame(sock)
        assert response["ok"] and response["negotiated"] == PROTOCOL_VERSION_BINARY
        return sock

    def test_garbage_binary_frame_gets_bad_frame(self, v2_server):
        sock = self._handshake(v2_server)
        try:
            garbage = b"\x00\x00\x00\x10" + b"not a json header"
            sock.sendall(LENGTH_PREFIX.pack(BINARY_FLAG | len(garbage)) + garbage)
            response = recv_frame(sock)
            assert response["ok"] is False
            assert response["code"] == "bad_frame"
            assert recv_frame(sock) is None  # only this connection is dropped
        finally:
            sock.close()

    def test_legacy_hello_settles_on_v1(self, v2_server):
        """A pre-v2 hello (no extension keys) gets a v1 connection, and the
        hello response keeps the frozen ``protocol: 1`` field either way."""
        sock = socket.create_connection(v2_server.address, timeout=5)
        try:
            send_frame(sock, {"op": "hello", "protocol": 1})  # legacy hello
            response = recv_frame(sock)
            assert response["ok"]
            assert response["protocol"] == PROTOCOL_VERSION  # frozen forever
            assert response.get("negotiated", 1) == PROTOCOL_VERSION
            send_frame(sock, {"op": "components", "s": 2})
            assert recv_frame(sock)["ok"]
        finally:
            sock.close()

    def test_other_connections_survive_a_garbage_frame(self, v2_server):
        with ServiceClient(*v2_server.address, connect_retries=5) as healthy:
            assert healthy.components(2) >= 1
            bad = self._handshake(v2_server)
            try:
                payload = b"\xff\xff\xff\xff garbage"
                bad.sendall(LENGTH_PREFIX.pack(BINARY_FLAG | len(payload)) + payload)
                response = recv_frame(bad)
                assert response["code"] == "bad_frame"
            finally:
                bad.close()
            # The healthy client's connection is untouched.
            assert healthy.components(2) >= 1
            assert healthy.metric(2, "connected_components")
