"""Observability across the serving stack: stats superset, slow-query log,
the ``metrics`` op, and replica-lag tracking."""

import time

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.service import QueryService
from repro.service.remote import RemoteReadReplica
from repro.service.transport import ServiceClient, SocketServer
from repro.store.store import IndexStore


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


@pytest.fixture
def registry():
    """Isolate every instrument the test's components bind."""
    with use_registry(MetricsRegistry()) as reg:
        yield reg


class TestStatsPayload:
    def test_stats_is_a_superset_with_a_metrics_snapshot(self, store_path, registry):
        with QueryService(store_path) as svc:
            svc.submit_add([0, 1, 2])
            svc.flush()
            svc.metric(2, "connected_components")
            stats = svc.stats()
        # The pre-existing keys survive for old clients...
        for key in ("read_only", "generation", "fingerprint", "engine", "admission"):
            assert key in stats
        # ...and the metrics snapshot rides along.
        metrics = stats["metrics"]
        assert metrics["repro_wal_appended_records_total"]["values"][0]["value"] >= 1
        assert "repro_admission_wait_seconds" in metrics

    def test_admission_snapshot_has_stable_documented_keys(self, store_path, registry):
        with QueryService(store_path) as svc:
            svc.submit_add([0, 1, 2])
            svc.flush()
            admission = svc.stats()["admission"]
        assert set(admission) == {
            "submitted",
            "applied",
            "failed",
            "batches",
            "largest_batch",
            "mean_batch_size",
            "pending",
        }
        assert admission["applied"] == 1
        assert admission["pending"] == 0
        assert admission["applied"] + admission["failed"] <= admission["submitted"]

    def test_engine_cache_counters_feed_the_registry(self, store_path, registry):
        with QueryService(store_path) as svc:
            svc.metric(2, "connected_components")
            svc.metric(2, "connected_components")
        hits = registry.get("repro_cache_hits_total")
        assert hits.labels(cache="engine").value >= 1


class TestSlowQueryLog:
    def test_disabled_by_default(self, store_path, registry):
        with QueryService(store_path) as svc:
            svc.metric(2, "connected_components")
            stats = svc.stats()
        assert "slow_queries" not in stats

    def test_slow_queries_are_recorded_with_context(self, store_path, registry):
        with QueryService(store_path, slow_query_ms=0.0) as svc:
            svc.metric(3, "pagerank")
            stats = svc.stats()
        assert stats["slow_query_ms"] == 0.0
        entries = stats["slow_queries"]
        assert entries
        entry = entries[-1]
        assert entry["s"] == 3
        assert entry["metric"] == "pagerank"
        assert entry["duration_ms"] >= 0
        assert entry["generation"] == 0
        assert "timestamp" in entry

    def test_fast_queries_stay_out(self, store_path, registry):
        with QueryService(store_path, slow_query_ms=60_000.0) as svc:
            svc.metric(2, "connected_components")
            assert svc.stats()["slow_queries"] == []

    def test_ring_is_bounded(self, store_path, registry):
        with QueryService(
            store_path, slow_query_ms=0.0, slow_query_capacity=4
        ) as svc:
            for s in range(1, 9):
                svc.num_components(s)
            entries = svc.stats()["slow_queries"]
        assert len(entries) == 4
        # Oldest entries fell off: the survivors are the most recent.
        assert [e["s"] for e in entries] == [5, 6, 7, 8]


class TestMetricsOp:
    def test_writer_serves_prometheus_text_over_the_socket(
        self, store_path, registry
    ):
        with QueryService(store_path) as svc:
            svc.submit_add([0, 1, 2])
            svc.flush()
            with SocketServer(svc) as server:
                with ServiceClient(*server.address) as client:
                    client.metric(2, "connected_components")
                    text = client.metrics_text()
        assert "# TYPE repro_request_seconds histogram" in text
        assert 'repro_request_seconds_bucket{op="metric"' in text
        assert "repro_wal_appended_records_total 1" in text
        assert "repro_admission_batch_size_count" in text

    def test_metrics_op_is_idempotent_and_inline(self, store_path, registry):
        with QueryService(store_path) as svc:
            response = svc.execute({"op": "metrics"})
        assert response["ok"]
        assert response["content_type"].startswith("text/plain; version=0.0.4")
        assert "# TYPE" in response["text"]

    def test_chained_replica_is_scrapeable_too(self, store_path, tmp_path, registry):
        with QueryService(store_path) as writer:
            with SocketServer(writer) as upstream:
                replica = RemoteReadReplica(
                    *upstream.address, store_path=str(tmp_path / "mirror")
                )
                try:
                    with SocketServer(_replica_service(replica)) as downstream:
                        with ServiceClient(*downstream.address) as client:
                            text = client.metrics_text()
                    assert "repro_replica_wal_lag_bytes" in text
                    assert "repro_replication_syncs_total" in text
                finally:
                    replica.close()

    def test_request_errors_are_counted_by_op_and_code(self, store_path, registry):
        with QueryService(store_path) as svc:
            with SocketServer(svc) as server:
                with ServiceClient(*server.address) as client:
                    client.call({"op": "metric", "s": 2, "metric": "nope"})
                    client.call({"op": "definitely_unknown"})
        errors = registry.get("repro_request_errors_total")
        assert errors.labels(op="metric", code="bad_request").value == 1
        assert errors.labels(op="other", code="bad_request").value == 1


def _replica_service(replica):
    """A minimal service façade over a RemoteReadReplica for SocketServer.

    The CLI's ``replicate --serve`` fronts the mirror directory with a real
    read-only QueryService; here the replica's own mirror dir is locked by
    the replica, so serve its engine surface through the replica directly.
    """
    from repro.service.service import QueryService

    return QueryService(replica.path, read_only=True)


class TestReplicaLag:
    def test_lag_rises_while_sync_is_paused_and_recovers(
        self, store_path, tmp_path, registry
    ):
        with QueryService(store_path) as writer:
            with SocketServer(writer) as server:
                # poll_interval far in the future = sync is "paused": the
                # replica serves local state and only lag() talks upstream.
                replica = RemoteReadReplica(
                    *server.address,
                    store_path=str(tmp_path / "mirror"),
                    poll_interval=3600.0,
                )
                try:
                    assert replica.lag()["wal_lag_bytes"] == 0

                    writer.submit_add([0, 1, 2])
                    writer.submit_add([1, 2, 3])
                    writer.flush()

                    lag = replica.lag()
                    assert lag["wal_lag_bytes"] > 0
                    gauge = registry.get("repro_replica_wal_lag_bytes")
                    assert gauge.value == lag["wal_lag_bytes"]

                    replica.sync(force=True)
                    assert replica.lag()["wal_lag_bytes"] == 0
                    assert gauge.value == 0
                finally:
                    replica.close()

    def test_generation_lag_counts_compactions(self, store_path, tmp_path, registry):
        with QueryService(store_path) as writer:
            with SocketServer(writer) as server:
                replica = RemoteReadReplica(
                    *server.address,
                    store_path=str(tmp_path / "mirror"),
                    poll_interval=3600.0,
                )
                try:
                    writer.submit_add([0, 1, 2])
                    writer.flush()
                    writer.compact()
                    lag = replica.lag()
                    assert lag["generation_lag"] == 1
                    replica.sync(force=True)
                    assert replica.lag()["generation_lag"] == 0
                finally:
                    replica.close()

    def test_sync_age_tracks_time_since_last_sync(self, store_path, tmp_path, registry):
        with QueryService(store_path) as writer:
            with SocketServer(writer) as server:
                replica = RemoteReadReplica(
                    *server.address,
                    store_path=str(tmp_path / "mirror"),
                    poll_interval=3600.0,
                )
                try:
                    age = registry.get("repro_replica_last_sync_age_seconds")
                    first = age.value
                    assert first >= 0
                    time.sleep(0.05)
                    assert age.value > first
                    replica.sync(force=True)
                    assert age.value < 0.05 + first
                finally:
                    replica.close()

    def test_sync_counters_split_full_from_delta(self, store_path, tmp_path, registry):
        with QueryService(store_path) as writer:
            with SocketServer(writer) as server:
                replica = RemoteReadReplica(
                    *server.address,
                    store_path=str(tmp_path / "mirror"),
                    poll_interval=0.0,
                )
                try:
                    syncs = registry.get("repro_replication_syncs_total")
                    assert syncs.labels(kind="full").value == 1  # bootstrap
                    writer.submit_add([0, 1, 2])
                    writer.flush()
                    replica.sync()
                    assert syncs.labels(kind="delta").value == 1
                    assert registry.get(
                        "repro_replication_wal_records_total"
                    ).value >= 1
                finally:
                    replica.close()
