"""QueryService façade: concurrent queries, admission, compaction, batching."""

import threading
import time

import numpy as np
import pytest

from repro.engine.engine import QueryEngine
from repro.service import CompactionPolicy, QueryService, StoreLockHeldError
from repro.store.format import ReadOnlyStoreError
from repro.store.store import IndexStore
from repro.utils.rng import make_rng
from repro.utils.validation import ValidationError


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


def random_members(h, rng, size=5):
    return np.unique(rng.choice(h.num_vertices, size=size, replace=False)).tolist()


class TestLifecycle:
    def test_create_builds_a_store(self, community_hypergraph, tmp_path):
        path = str(tmp_path / "fresh")
        with QueryService(path, hypergraph=community_hypergraph, create=True) as svc:
            assert svc.generation == 0
            assert svc.num_components(1) >= 1
        assert IndexStore.exists(path)

    def test_single_writer_lock_is_enforced(self, store_path):
        with QueryService(store_path):
            with pytest.raises(StoreLockHeldError):
                QueryService(store_path)
        # Lock released on close: a new writer may start.
        with QueryService(store_path) as svc:
            assert not svc.read_only

    def test_readers_coexist_with_the_writer(self, store_path):
        with QueryService(store_path) as writer:
            with QueryService(store_path, read_only=True) as reader:
                writer.submit_add([0, 1, 2, 3])
                writer.flush()
                assert (
                    reader.metric_by_hyperedge(2, "pagerank")
                    == writer.metric_by_hyperedge(2, "pagerank")
                )

    def test_read_only_service_rejects_updates(self, store_path):
        with QueryService(store_path, read_only=True) as svc:
            with pytest.raises(ReadOnlyStoreError):
                svc.submit_add([0, 1])
            with pytest.raises(ReadOnlyStoreError):
                svc.submit_remove(0)
            with pytest.raises(ReadOnlyStoreError):
                svc.compact()
            response = svc.execute({"op": "add", "members": [0, 1]})
            assert response["ok"] is False
            assert "read-only" in response["error"]

    def test_close_is_idempotent(self, store_path):
        svc = QueryService(store_path)
        svc.close()
        svc.close()


class TestQueries:
    def test_queries_match_fresh_engine(self, store_path, community_hypergraph):
        with QueryService(store_path) as svc:
            oracle = QueryEngine(community_hypergraph)
            for s in (1, 2, 3):
                assert svc.line_graph(s) == oracle.line_graph(s)
                assert svc.metric_by_hyperedge(s, "pagerank") == pytest.approx(
                    oracle.metric_by_hyperedge(s, "pagerank")
                )
            sweep = svc.sweep(range(1, 4), metrics=("connected_components",))
            assert sweep.edge_counts == oracle.sweep(range(1, 4)).edge_counts

    def test_serve_batch_preserves_order_across_workers(self, store_path):
        with QueryService(store_path, num_workers=4) as svc:
            requests = [{"op": "components", "s": s} for s in (1, 2, 3, 1, 2, 3)]
            responses = svc.serve(requests)
            assert [r["s"] for r in responses] == [1, 2, 3, 1, 2, 3]
            assert all(r["ok"] for r in responses)
            assert responses[0]["count"] == responses[3]["count"]

    def test_serve_isolates_bad_requests(self, store_path):
        with QueryService(store_path) as svc:
            responses = svc.serve(
                [
                    {"op": "metric", "s": 2, "metric": "pagerank"},
                    {"op": "metric", "s": 2, "metric": "nope"},
                    {"op": "frobnicate"},
                    {"op": "components", "s": 1},
                ]
            )
            assert responses[0]["ok"] and responses[3]["ok"]
            assert not responses[1]["ok"] and "unknown metric" in responses[1]["error"]
            assert not responses[2]["ok"] and "unknown op" in responses[2]["error"]

    def test_concurrent_queries_and_updates_stay_consistent(self, store_path):
        """Hammer queries from several threads while updates stream in: every
        response must equal the oracle for *some* consistent state, and the
        final state must match a from-scratch rebuild."""
        errors = []
        stop = threading.Event()

        with QueryService(store_path, max_batch=8) as svc:
            def query_loop():
                try:
                    while not stop.is_set():
                        labels = svc.metric(1, "connected_components")
                        assert labels.ndim == 1
                        svc.line_graph(2)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=query_loop) for _ in range(4)]
            for t in threads:
                t.start()
            rng = make_rng(11)
            futures = []
            for _ in range(20):
                futures.append(
                    svc.submit_add(random_members(svc.engine.hypergraph, rng))
                )
            svc.flush()
            stop.set()
            for t in threads:
                t.join(timeout=10)
            assert not errors
            assert all(f.done() for f in futures)
            oracle = QueryEngine(svc.engine.hypergraph)
            for s in (1, 2, 3):
                assert svc.line_graph(s) == oracle.line_graph(s), s


class TestCompaction:
    def test_manual_compact_folds_wal(self, store_path):
        with QueryService(store_path) as svc:
            rng = make_rng(5)
            for _ in range(6):
                svc.submit_add(random_members(svc.engine.hypergraph, rng))
            assert svc.compact()
            assert svc.generation == 1
            assert svc.engine.store.num_wal_records() == 0
            oracle = QueryEngine(svc.engine.hypergraph)
            assert svc.line_graph(2) == oracle.line_graph(2)

    def test_background_compaction_triggers_on_wal_growth(self, store_path):
        policy = CompactionPolicy(max_wal_records=8, max_wal_bytes=None)
        with QueryService(
            store_path, compaction=policy, compaction_poll_interval=0.02
        ) as svc:
            rng = make_rng(6)
            for _ in range(12):
                svc.submit_add(random_members(svc.engine.hypergraph, rng))
            svc.flush()
            deadline = time.monotonic() + 10
            while svc.generation == 0 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert svc.generation >= 1
            oracle = QueryEngine(svc.engine.hypergraph)
            for s in (1, 2, 3):
                assert svc.line_graph(s) == oracle.line_graph(s), s

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            CompactionPolicy(max_wal_records=None, max_wal_bytes=None)
        policy = CompactionPolicy(max_wal_records=4, max_wal_bytes=None)
        assert not policy.should_compact(0, 0)  # empty log never triggers
        assert not policy.should_compact(3, 10**9)  # bytes threshold disabled
        assert policy.should_compact(4, 0)

    def test_background_failure_is_logged_and_the_loop_survives(self, caplog):
        """Regression: the compactor retry loop used to swallow failures
        silently, so a dying disk looked like a healthy idle compactor."""
        from repro.service.compaction import BackgroundCompactor
        from repro.service.sync import RWLock

        class _DyingWal:
            path = "/nonexistent/wal"

        class _DyingStore:
            wal = _DyingWal()

            def num_wal_records(self):
                raise RuntimeError("disk died")

        class _DyingEngine:
            store = _DyingStore()

        import logging

        with caplog.at_level(logging.WARNING, logger="repro.service.compaction"):
            compactor = BackgroundCompactor(
                _DyingEngine(), RWLock(), poll_interval=0.01
            )
            try:
                deadline = time.monotonic() + 5
                while not caplog.records and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert compactor._thread.is_alive()  # the tick loop survived
            finally:
                compactor.stop(timeout=5)
        assert any(
            "background compaction failed" in record.message
            for record in caplog.records
        )


class TestRequestProtocol:
    def test_add_wait_and_sweep_round_trip(self, store_path):
        with QueryService(store_path) as svc:
            n_before = svc.engine.hypergraph.num_edges
            responses = svc.serve(
                [
                    {"op": "add", "members": [0, 1, 2], "wait": True},
                    {"op": "flush"},
                    {"op": "sweep", "s_min": 1, "s_max": 3},
                    {"op": "stats"},
                ],
                num_workers=1,
            )
            assert responses[0] == {"ok": True, "op": "add", "edge_id": n_before}
            assert responses[1]["flushed"]
            assert set(responses[2]["edge_counts"]) == {"1", "2", "3"}
            assert responses[3]["stats"]["admission"]["applied"] == 1

    def test_compact_request_reports_generation(self, store_path):
        with QueryService(store_path) as svc:
            svc.submit_add([0, 1, 2])
            response = svc.execute({"op": "compact"})
            assert response["ok"] and response["generation"] == 1
