"""Cross-module wire-contract invariants, pinned as plain unit tests.

``tools/repro-lint`` checks the same facts statically in CI; these tests
assert them against the *imported* modules, so a refactor that happens to
slip past the AST pass still fails here.
"""

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.service import QueryService
from repro.service.transport import ServiceClient, SocketServer
from repro.service.transport import client as client_mod
from repro.service.transport import framing
from repro.service.transport import server as server_mod
from repro.store.store import IndexStore


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


class TestOpPartition:
    def test_every_op_is_classified_exactly_once(self):
        assert not framing.IDEMPOTENT_OPS & framing.NONIDEMPOTENT_OPS
        assert framing.IDEMPOTENT_OPS and framing.NONIDEMPOTENT_OPS

    def test_client_retry_set_is_the_framing_constant(self):
        """Regression: the client kept a private copy of the retry set; a
        mutating op landing in the stale copy would be transparently
        re-sent after a reconnect (double-apply)."""
        assert client_mod._IDEMPOTENT_OPS is framing.IDEMPOTENT_OPS

    def test_mutating_ops_are_never_auto_retried(self):
        for op in framing.NONIDEMPOTENT_OPS:
            assert op not in client_mod._IDEMPOTENT_OPS, op


class TestMetricLabelVocabulary:
    def test_per_op_labels_cover_the_whole_contract(self):
        """Regression: ``chaos`` was missing from the server's label
        vocabulary, so its latency and errors were folded into
        ``op="other"`` and invisible per-op."""
        every_op = framing.IDEMPOTENT_OPS | framing.NONIDEMPOTENT_OPS
        missing = every_op - set(server_mod._METRIC_OPS)
        assert not missing, f"ops without metric labels: {sorted(missing)}"

    def test_refused_chaos_op_counts_under_its_own_label(self, store_path):
        with use_registry(MetricsRegistry()) as registry:
            with QueryService(store_path) as svc:  # chaos control disabled
                with SocketServer(svc) as server:
                    with ServiceClient(*server.address) as client:
                        response = client.call({"op": "chaos"})
        assert not response["ok"]
        errors = registry.get("repro_request_errors_total")
        assert errors.labels(op="chaos", code="bad_request").value == 1
