"""ReadReplica: read-only serving, WAL catch-up, compaction hot reload."""

import numpy as np
import pytest

from repro.engine.engine import QueryEngine
from repro.service.replica import ReadReplica
from repro.store.format import ReadOnlyStoreError
from repro.store.persistent import PersistentQueryEngine
from repro.store.store import IndexStore
from repro.utils.rng import make_rng


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


@pytest.fixture
def writer(store_path):
    return PersistentQueryEngine.open(store_path)


def random_members(h, rng, size=5):
    return np.unique(rng.choice(h.num_vertices, size=size, replace=False)).tolist()


def assert_replica_matches_oracle(replica, writer, s_values=(1, 2, 3)):
    oracle = QueryEngine(writer.hypergraph)
    for s in s_values:
        assert replica.line_graph(s) == oracle.line_graph(s), s
        assert replica.metric_by_hyperedge(s, "pagerank") == pytest.approx(
            oracle.metric_by_hyperedge(s, "pagerank")
        ), s


class TestServing:
    def test_serves_the_snapshot_state(self, store_path, writer):
        replica = ReadReplica(store_path)
        assert replica.generation == 0
        assert_replica_matches_oracle(replica, writer)

    def test_rejects_updates(self, store_path):
        replica = ReadReplica(store_path)
        with pytest.raises(ReadOnlyStoreError, match="read-only"):
            replica.engine.add_hyperedge([0, 1, 2])
        with pytest.raises(ReadOnlyStoreError, match="read-only"):
            replica.engine.remove_hyperedge(0)
        with pytest.raises(ReadOnlyStoreError, match="read-only"):
            replica.engine.compact()
        # Rejected before any in-memory mutation: still serving correctly.
        assert replica.num_components(1) >= 1

    def test_sweep_and_components(self, store_path, writer):
        replica = ReadReplica(store_path)
        oracle = QueryEngine(writer.hypergraph)
        result = replica.sweep(range(1, 4), metrics=("connected_components",))
        expected = oracle.sweep(range(1, 4), metrics=("connected_components",))
        assert result.edge_counts == expected.edge_counts
        labels = oracle.metric(1, "connected_components")
        assert replica.num_components(1) == int(labels.max()) + 1 if labels.size else 0


class TestCatchUp:
    def test_sees_wal_appends_from_the_writer(self, store_path, writer):
        replica = ReadReplica(store_path)
        rng = make_rng(7)
        for _ in range(4):
            writer.add_hyperedge(random_members(writer.hypergraph, rng))
        writer.remove_hyperedge(2)
        # Next query polls the change token and reloads.
        assert_replica_matches_oracle(replica, writer)
        assert replica.reloads == 1
        assert replica.fingerprint() == writer.fingerprint()

    def test_poll_interval_rate_limits_checks(self, store_path, writer):
        replica = ReadReplica(store_path, poll_interval=3600.0)
        before = replica.metric_by_hyperedge(2, "pagerank")
        writer.add_hyperedge([0, 1, 2, 3])
        # Within the poll interval: the stale view keeps serving.
        assert replica.metric_by_hyperedge(2, "pagerank") == before
        assert replica.reloads == 0
        replica.refresh()  # explicit refresh overrides the rate limit
        assert_replica_matches_oracle(replica, writer)

    def test_hot_reload_after_compaction(self, store_path, writer):
        replica = ReadReplica(store_path)
        rng = make_rng(8)
        for _ in range(5):
            writer.add_hyperedge(random_members(writer.hypergraph, rng))
        assert_replica_matches_oracle(replica, writer)  # replays the WAL
        writer.compact()
        assert_replica_matches_oracle(replica, writer)
        assert replica.generation == 1
        assert replica.reloads == 2

    def test_in_flight_view_survives_compaction_sweep(self, store_path, writer):
        """Queries on an engine captured before the sweep still answer
        (POSIX keeps unlinked mmap'd shards readable); new queries reload."""
        replica = ReadReplica(store_path)
        old_engine = replica.engine
        old_graph = old_engine.line_graph(2)  # touch shards: mmaps now open
        writer.add_hyperedge([0, 1, 2, 3, 4])
        writer.compact()  # sweeps generation-0 shard files
        assert old_engine.line_graph(2) == old_graph  # old view intact
        assert_replica_matches_oracle(replica, writer)
        assert replica.generation == 1

    def test_forced_refresh_retry_after_swept_shards(self, store_path, writer):
        """A replica whose engine never touched the old shards gets a store
        error on first touch after the sweep — and transparently retries."""
        replica = ReadReplica(store_path, poll_interval=3600.0)  # no polling
        writer.add_hyperedge([0, 1, 2, 3, 4])
        writer.compact()
        # Old generation files are gone; the stale engine's first shard
        # touch fails internally; the replica must recover by reloading.
        assert_replica_matches_oracle(replica, writer)
        assert replica.reloads >= 1


class TestEngineLeaks:
    """Regression: a refresh that opens an engine and then does not install
    it (lost the race, equal token, replica closed) used to drop the fresh
    engine without closing — leaking mmap'd shard handles every time."""

    @pytest.fixture
    def close_counter(self, monkeypatch):
        closed = []
        original = PersistentQueryEngine.close

        def counting_close(engine):
            closed.append(engine)
            return original(engine)

        monkeypatch.setattr(PersistentQueryEngine, "close", counting_close)
        return closed

    def test_superseded_refresh_closes_the_loser(
        self, store_path, writer, close_counter, monkeypatch
    ):
        replica = ReadReplica(store_path)
        served = replica.engine
        # Make the cheap outer staleness check lie so refresh() opens a
        # fresh engine even though the store did not change; the in-lock
        # install checks must then discard — and close — the loser.
        monkeypatch.setattr(
            IndexStore, "state_token", staticmethod(lambda path: (-1, -1))
        )
        assert replica.refresh() is False
        assert len(close_counter) == 1
        assert close_counter[0] is not served  # the serving engine survives
        monkeypatch.undo()
        assert replica.engine is served
        assert replica.metric_by_hyperedge(2, "pagerank")  # still serving

    def test_refresh_losing_to_close_shuts_the_fresh_engine(
        self, store_path, writer, close_counter
    ):
        replica = ReadReplica(store_path)
        real_open = replica._open

        def open_then_close():
            engine, token = real_open()
            replica.close()  # close() lands while the refresh is mid-open
            return engine, token

        replica._open = open_then_close
        writer.add_hyperedge([0, 1, 2])
        assert replica.refresh() is False
        # Exactly the freshly opened (never-installed) engine was closed.
        assert len(close_counter) == 1

    def test_installed_refresh_closes_nothing(self, store_path, writer, close_counter):
        replica = ReadReplica(store_path)
        writer.add_hyperedge([0, 1, 2, 3])
        assert replica.refresh() is True
        # Neither the new engine nor the replaced one (in-flight queries
        # may still hold it) is closed by a successful install.
        assert close_counter == []

    def test_sharded_index_close_releases_and_reopens(self, store_path):
        engine = PersistentQueryEngine.open(store_path, read_only=True, sharded=True)
        graph = engine.line_graph(2)
        assert engine.index.num_resident_shards > 0
        engine.close()
        assert engine.index.num_resident_shards == 0
        # close() releases handles; it is not a terminal state.
        assert engine.line_graph(2) == graph


class TestLifecycleAndConcurrency:
    def test_closed_replica_refuses_cleanly(self, store_path):
        from repro.store.format import StoreError

        replica = ReadReplica(store_path)
        replica.close()
        with pytest.raises(StoreError, match="closed"):
            replica.metric(2, "pagerank")
        assert replica.refresh() is False

    def test_recovers_after_writer_truncates_the_wal(self, store_path, writer):
        """A restarted writer legitimately *shrinks* the log (torn-tail
        truncation); the replica must not wedge on its larger byte count."""
        import os

        from repro.store.format import WAL_NAME

        replica = ReadReplica(store_path)
        writer.add_hyperedge([0, 1, 2])
        wal_path = os.path.join(store_path, WAL_NAME)
        with open(wal_path, "ab") as handle:
            handle.write(b'9\t00000000\t{"op": "add"')  # torn tail
        replica.refresh()  # replica token now includes the torn bytes
        IndexStore.open(store_path)  # writer restart: truncates the tail
        writer2 = PersistentQueryEngine.open(store_path)
        writer2.add_hyperedge([2, 3, 4])
        assert_replica_matches_oracle(replica, writer2)

    def test_concurrent_queries_share_one_sharded_index(self, store_path):
        """Regression: the shard-residency LRU is raced by query worker
        threads (move_to_end vs evict used to KeyError)."""
        import threading

        replica = ReadReplica(store_path, max_resident_shards=1)
        oracle = {s: replica.line_graph(s) for s in (1, 2, 3)}
        errors = []

        def hammer():
            try:
                for i in range(50):
                    s = 1 + i % 3
                    assert replica.line_graph(s) == oracle[s]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
