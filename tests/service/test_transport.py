"""The socket transport: framing, handshake, server/client round trips.

Every served value is cross-checked against the in-process
:class:`QueryService` the server fronts, so the wire adds encoding and
concurrency — never different answers.
"""

import socket
import threading

import pytest

from repro.service import QueryService, RemoteEngine, ServiceClient, SocketServer
from repro.service.transport import (
    PROTOCOL_VERSION,
    FrameError,
    FrameTooLargeError,
    RemoteServiceError,
    ServiceBusyError,
    TransportError,
    TruncatedFrameError,
)
from repro.service.transport.framing import (
    LENGTH_PREFIX,
    decode_payload,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.smetrics.centrality import s_pagerank
from repro.store.store import IndexStore


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


@pytest.fixture
def writer(store_path):
    with QueryService(store_path, max_batch=16) as service:
        yield service


@pytest.fixture
def server(writer):
    with SocketServer(writer, port=0, max_connections=8) as srv:
        yield srv


@pytest.fixture
def client(server):
    with ServiceClient(*server.address, connect_retries=5) as c:
        yield c


class TestFraming:
    def test_round_trip_through_a_socket_pair(self):
        a, b = socket.socketpair()
        payload = {"op": "metric", "s": 3, "values": {"0": 1.5}}
        send_frame(a, payload)
        assert recv_frame(b) == payload
        a.close()
        assert recv_frame(b) is None  # clean EOF between frames
        b.close()

    def test_length_prefix_layout(self):
        frame = encode_frame({"a": 1}, max_frame_bytes=1024)
        (length,) = LENGTH_PREFIX.unpack(frame[:4])
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == {"a": 1}

    def test_oversized_frame_refused_before_encoding(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame({"blob": "x" * 100}, max_frame_bytes=50)

    def test_oversized_frame_refused_before_reading_payload(self):
        a, b = socket.socketpair()
        a.sendall(LENGTH_PREFIX.pack(10_000_000))
        with pytest.raises(FrameTooLargeError):
            recv_frame(b, max_frame_bytes=1024)
        a.close()
        b.close()

    def test_truncated_stream_raises_mid_frame(self):
        a, b = socket.socketpair()
        frame = encode_frame({"op": "stats"}, max_frame_bytes=1024)
        a.sendall(frame[: len(frame) - 3])
        a.close()
        with pytest.raises(TruncatedFrameError):
            recv_frame(b)
        b.close()

    def test_non_object_payload_rejected(self):
        a, b = socket.socketpair()
        a.sendall(LENGTH_PREFIX.pack(2) + b"[]")
        with pytest.raises(FrameError):
            recv_frame(b)
        a.close()
        b.close()


class TestHandshake:
    def test_hello_reports_mode_protocol_and_generation(self, server, client):
        info = client.server_info
        assert info["protocol"] == PROTOCOL_VERSION
        assert info["read_only"] is False
        assert info["generation"] == 0

    def test_raw_socket_handshake(self, server):
        sock = socket.create_connection(server.address)
        send_frame(sock, {"op": "hello", "protocol": PROTOCOL_VERSION})
        response = recv_frame(sock)
        assert response["ok"] and response["op"] == "hello"
        sock.close()


class TestQueriesMatchTheLocalService:
    def test_metric_values_identical(self, writer, client):
        expected = writer.metric_by_hyperedge(2, "pagerank")
        assert client.metric(2, "pagerank") == pytest.approx(expected)

    def test_components_and_sweep(self, writer, client):
        assert client.components(2) == writer.num_components(2)
        remote = client.sweep(s_min=1, s_max=4)
        local = writer.sweep(range(1, 5))
        assert remote["edge_counts"] == local.edge_counts
        assert remote["active_counts"] == local.active_counts

    def test_batch_preserves_order_and_fans_out(self, writer, client):
        requests = [{"op": "components", "s": s} for s in (3, 1, 2, 1, 3)]
        responses = client.batch(requests)
        assert [r["s"] for r in responses] == [3, 1, 2, 1, 3]
        assert [r["count"] for r in responses] == [
            writer.num_components(s) for s in (3, 1, 2, 1, 3)
        ]

    def test_pipelined_requests_answered_in_order(self, server):
        """Send several frames before reading any response."""
        sock = socket.create_connection(server.address)
        send_frame(sock, {"op": "hello", "protocol": PROTOCOL_VERSION})
        assert recv_frame(sock)["ok"]
        for s in (1, 2, 3):
            send_frame(sock, {"op": "components", "s": s})
        answers = [recv_frame(sock) for _ in range(3)]
        assert [a["s"] for a in answers] == [1, 2, 3]
        assert all(a["ok"] for a in answers)
        sock.close()

    def test_stats_round_trip(self, client):
        stats = client.stats()
        assert stats["read_only"] is False
        assert "admission" in stats


class TestDurableUpdatesOverTheWire:
    def test_add_ack_carries_edge_id_and_is_applied(self, writer, client):
        num_edges = writer.engine.hypergraph.num_edges
        edge_id = client.add([0, 1, 2, 3])
        assert edge_id == num_edges
        assert writer.engine.hypergraph.num_edges == num_edges + 1
        # The WAL holds the record: the ack implied durability.
        assert writer.engine.store.num_wal_records() >= 1

    def test_remove_ack(self, writer, client):
        edge_id = client.add([0, 1, 2])
        assert client.remove(edge_id) is True
        assert writer.engine.hypergraph.edge_size(edge_id) == 0

    def test_flush_and_compact(self, writer, client):
        client.add([1, 2, 3], wait=False)
        client.flush()
        assert client.compact() == 1
        assert writer.generation == 1

    def test_unknown_metric_is_bad_request(self, client):
        with pytest.raises(RemoteServiceError) as excinfo:
            client.metric(2, "nonsense")
        assert excinfo.value.code == "bad_request"

    def test_unknown_op_is_bad_request(self, client):
        response = client.call({"op": "frobnicate"})
        assert response["ok"] is False
        assert response["code"] == "bad_request"


class TestReadOnlyServer:
    def test_replica_server_serves_queries_but_rejects_writes(self, store_path, writer):
        replica = QueryService(store_path, read_only=True)
        with SocketServer(replica, port=0) as server:
            with ServiceClient(*server.address) as client:
                assert client.server_info["read_only"] is True
                assert client.components(2) == writer.num_components(2)
                with pytest.raises(RemoteServiceError) as excinfo:
                    client.add([0, 1, 2])
                assert excinfo.value.code == "read_only"
        replica.close()


class TestBackpressure:
    def test_connections_past_the_limit_get_busy(self, writer):
        with SocketServer(writer, port=0, max_connections=1) as server:
            with ServiceClient(*server.address) as first:
                assert first.components(1) >= 0
                blocked = ServiceClient(
                    *server.address, connect_retries=2, retry_interval=0.01
                )
                with pytest.raises(TransportError) as excinfo:
                    blocked.connect()
                assert isinstance(excinfo.value.__cause__, ServiceBusyError)
                assert "connection limit" in str(excinfo.value.__cause__)
                assert server.stats.connections_rejected >= 1
            # Slot freed: the same client settings now connect fine.
            with ServiceClient(*server.address, connect_retries=20) as second:
                assert second.components(1) >= 0

    def test_busy_is_retried_until_a_slot_frees(self, writer):
        with SocketServer(writer, port=0, max_connections=1) as server:
            first = ServiceClient(*server.address).connect()
            release = threading.Timer(0.3, first.close)
            release.start()
            try:
                # Out-waits the busy phase thanks to connect retries.
                with ServiceClient(
                    *server.address, connect_retries=100, retry_interval=0.05
                ) as second:
                    assert second.components(1) >= 0
            finally:
                release.cancel()


class TestGracefulShutdown:
    def test_close_drains_and_clients_see_eof(self, writer):
        server = SocketServer(writer, port=0).start()
        client = ServiceClient(*server.address, reconnect=False).connect()
        assert client.components(1) >= 0
        server.close()
        with pytest.raises(TransportError):
            client.call({"op": "components", "s": 1})
        client.close()
        assert server.stats.active_connections == 0

    def test_close_is_idempotent(self, writer):
        server = SocketServer(writer, port=0).start()
        server.close()
        server.close()

    def test_service_survives_its_server(self, writer):
        server = SocketServer(writer, port=0).start()
        server.close()
        assert writer.num_components(1) >= 0  # service not closed by server


class TestRemoteEngineShim:
    def test_smetrics_served_through_the_wire(
        self, community_hypergraph, writer, client
    ):
        engine = RemoteEngine(client)
        remote = s_pagerank(community_hypergraph, 2, engine=engine)
        local = s_pagerank(community_hypergraph, 2)
        assert remote == pytest.approx(local)

    def test_fingerprint_guard_rejects_a_different_hypergraph(
        self, small_random_hypergraph, client
    ):
        from repro.utils.validation import ValidationError

        with pytest.raises(ValidationError, match="different hypergraph"):
            s_pagerank(small_random_hypergraph, 2, engine=RemoteEngine(client))

    def test_fingerprint_tracks_remote_updates(self, writer, client):
        engine = RemoteEngine(client)
        before = engine.fingerprint()
        client.add([0, 1, 2, 3, 4])
        assert engine.fingerprint() != before
        assert engine.fingerprint() == writer.engine.fingerprint()
