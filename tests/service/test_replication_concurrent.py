"""Acceptance: multi-machine read replicas with no shared filesystem.

A writer :class:`SocketServer` (in-process, so the test can consult the
writer's hypergraph for the oracle) and a ``python -m repro replicate
--from ... --store ... --serve`` subprocess that mirrors the store into
its *own* directory purely over TCP — the only channel between the two
"machines" is the socket protocol.  Remote reader clients in separate OS
processes drive queries against the replica server; every served value
must be byte-identical (JSON text) to the
:class:`repro.core.pipeline.SLinePipeline` oracle on the writer's current
hypergraph — across batched updates (WAL-tail delta syncs) and a
compaction (changed-shards-only delta sync with a hot generation swap).
"""

import json
import multiprocessing as mp
import os
import subprocess
import sys
import time

import pytest

from repro.core.pipeline import SLinePipeline
from repro.service import QueryService, ServiceClient, SocketServer
from repro.store.store import IndexStore
from repro.utils.rng import make_rng


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


def oracle_json(h, s, metric):
    """Pipeline oracle, serialised exactly like the wire's ``values``."""
    pipeline = SLinePipeline(
        metrics=(metric,), drop_empty_edges=False, drop_isolated_vertices=False
    )
    values = pipeline.run(h, s).metric_by_hyperedge(metric)
    return json.dumps(
        {str(k): float(v) for k, v in sorted(values.items())}, sort_keys=True
    )


def reader_process(address, phases, results):
    """Remote client: each phase, serve queries and report the raw JSON."""
    host, port = address
    with ServiceClient(host, port) as client:
        while True:
            phase = phases.get()
            if phase is None:
                return
            answers = {}
            for s, metric in [(2, "pagerank"), (1, "connected_components")]:
                response = client.request({"op": "metric", "s": s, "metric": metric})
                answers[f"{metric}/{s}"] = json.dumps(response["values"], sort_keys=True)
            answers["components/2"] = client.components(2)
            results.put((phase, answers, client.generation()))


def await_convergence(monitor, fingerprint, timeout=60.0):
    deadline = time.monotonic() + timeout
    while monitor.fingerprint() != fingerprint:
        assert time.monotonic() < deadline, "remote mirror did not catch up"
        time.sleep(0.05)


def await_generation(monitor, generation, timeout=60.0):
    """Compaction does not change the fingerprint — wait on the generation."""
    deadline = time.monotonic() + timeout
    while monitor.generation() != generation:
        assert time.monotonic() < deadline, "remote mirror did not pull the compaction"
        time.sleep(0.05)


NUM_READERS = 2


class TestRemoteMirrorAcceptance:
    def test_replicate_serve_matches_oracle_across_updates_and_compaction(
        self, store_path, tmp_path
    ):
        mirror_path = str(tmp_path / "mirror")
        with QueryService(store_path, max_batch=16) as writer:
            with SocketServer(writer, port=0) as writer_server:
                proc = subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "replicate",
                        "--from", f"{writer_server.host}:{writer_server.port}",
                        "--store", mirror_path,
                        "--serve", "127.0.0.1:0",
                        "--poll-interval", "0.1",
                    ],
                    env=_env(),
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                    bufsize=1,
                )
                try:
                    synced = json.loads(proc.stdout.readline())
                    assert synced["op"] == "synced" and synced["full_sync"]
                    listening = json.loads(proc.stdout.readline())
                    assert listening["op"] == "listening" and listening["read_only"]
                    replica_address = (listening["host"], listening["port"])

                    ctx = mp.get_context("spawn")
                    phases = [ctx.Queue() for _ in range(NUM_READERS)]
                    results = ctx.Queue()
                    readers = [
                        ctx.Process(
                            target=reader_process,
                            args=(replica_address, phases[i], results),
                        )
                        for i in range(NUM_READERS)
                    ]
                    for reader in readers:
                        reader.start()

                    def run_phase(name):
                        h = writer.engine.hypergraph
                        expected = {
                            "pagerank/2": oracle_json(h, 2, "pagerank"),
                            "connected_components/1": oracle_json(
                                h, 1, "connected_components"
                            ),
                            "components/2": SLinePipeline(
                                metrics=("connected_components",)
                            ).run(h, 2).num_components(),
                        }
                        for queue in phases:
                            queue.put(name)
                        for _ in readers:
                            phase, answers, generation = results.get(timeout=120)
                            assert phase == name
                            assert answers == expected, f"diverged in phase {name}"
                        return generation

                    try:
                        with ServiceClient(*replica_address) as monitor, ServiceClient(
                            *writer_server.address
                        ) as updater:
                            # Phase 1: the bootstrapped snapshot.
                            assert run_phase("snapshot") == 0

                            # Phase 2: durable updates; the mirror pulls
                            # them as a WAL-tail delta over the socket.
                            rng = make_rng(31)
                            h = writer.engine.hypergraph
                            for _ in range(8):
                                members = sorted(
                                    set(int(v) for v in rng.choice(h.num_vertices, 5))
                                )
                                updater.add(members, wait=True)
                            updater.remove(1, wait=True)
                            await_convergence(monitor, writer.engine.fingerprint())
                            run_phase("updated")

                            # Phase 3: compaction; the mirror delta-syncs
                            # the new generation and hot-swaps it.
                            assert updater.compact() == 1
                            await_generation(monitor, 1)
                            assert run_phase("compacted") == 1
                    finally:
                        for queue in phases:
                            queue.put(None)
                        for reader in readers:
                            reader.join(timeout=30)
                            if reader.is_alive():  # pragma: no cover - cleanup
                                reader.terminate()
                finally:
                    proc.terminate()
                    proc.wait(timeout=30)
                    proc.stdout.close()
                    proc.stderr.close()

    def test_replicate_bootstrap_once_is_byte_identical(self, store_path, tmp_path):
        """Without --serve, replicate is a one-shot bootstrap/backup."""
        mirror_path = str(tmp_path / "mirror")
        with QueryService(store_path, max_batch=16) as writer:
            writer.submit_add([0, 1, 2, 3]).result()
            with SocketServer(writer, port=0) as server:
                out = subprocess.run(
                    [
                        sys.executable, "-m", "repro", "replicate",
                        "--from", f"{server.host}:{server.port}",
                        "--store", mirror_path,
                    ],
                    env=_env(),
                    capture_output=True,
                    text=True,
                    timeout=120,
                )
        assert out.returncode == 0, out.stderr
        synced = json.loads(out.stdout.splitlines()[0])
        assert synced["op"] == "synced" and synced["wal_records"] == 1
        _assert_byte_identical(store_path, mirror_path)


def _store_files(path):
    skip = {"replication.json", "writer.lock"}
    out = {}
    for root, _, files in os.walk(str(path)):
        for name in files:
            if name in skip or name.endswith((".sync", ".staged")):
                continue
            full = os.path.join(root, name)
            rel = os.path.relpath(full, str(path)).replace(os.sep, "/")
            with open(full, "rb") as handle:
                out[rel] = handle.read()
    return out


def _assert_byte_identical(source_path, mirror_path):
    source, mirror = _store_files(source_path), _store_files(mirror_path)
    assert sorted(source) == sorted(mirror)
    for name in source:
        assert source[name] == mirror[name], f"mirror differs from source: {name}"
