"""RemoteReadReplica: a read replica fed purely over the socket protocol.

These tests run the writer's socket server in-process and point a
:class:`RemoteReadReplica` at it with a *separate* local directory — no
shared store path — exercising bootstrap, WAL-delta convergence,
compaction hot-swap, peer-outage degradation and mirror locking.
"""

import pytest

from repro.engine.engine import QueryEngine
from repro.service import (
    QueryService,
    RemoteReadReplica,
    ServiceClient,
    SocketServer,
    StoreLockHeldError,
)
from repro.service.lock import StoreLock
from repro.store.format import StoreError
from repro.store.store import IndexStore
from repro.utils.rng import make_rng


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


@pytest.fixture
def writer(store_path):
    with QueryService(store_path, max_batch=16) as service:
        yield service


@pytest.fixture
def server(writer):
    with SocketServer(writer, port=0) as srv:
        yield srv


@pytest.fixture
def mirror_path(tmp_path):
    return str(tmp_path / "mirror")


def assert_matches_oracle(replica, writer, s_values=(1, 2, 3)):
    oracle = QueryEngine(writer.engine.hypergraph)
    for s in s_values:
        assert replica.line_graph(s) == oracle.line_graph(s), s
        assert replica.metric_by_hyperedge(s, "pagerank") == pytest.approx(
            oracle.metric_by_hyperedge(s, "pagerank")
        ), s


class TestRemoteReadReplica:
    def test_bootstraps_and_serves_the_snapshot(self, server, writer, mirror_path):
        with RemoteReadReplica(server.host, server.port, mirror_path) as replica:
            assert replica.generation == 0
            assert_matches_oracle(replica, writer)
            assert replica.fingerprint() == writer.engine.fingerprint()

    def test_converges_after_writer_updates(self, server, writer, mirror_path):
        with RemoteReadReplica(server.host, server.port, mirror_path) as replica:
            assert_matches_oracle(replica, writer)
            rng = make_rng(5)
            h = writer.engine.hypergraph
            for _ in range(4):
                members = sorted(set(int(v) for v in rng.choice(h.num_vertices, 5)))
                writer.submit_add(members)
            writer.submit_remove(2)
            writer.flush()
            # The next query polls the peer token, pulls the WAL delta and
            # hot-swaps — no shared filesystem anywhere.
            assert_matches_oracle(replica, writer)
            assert replica.fingerprint() == writer.engine.fingerprint()
            assert replica.mirror.wal_seq == 5

    def test_hot_swaps_across_a_compaction(self, server, writer, mirror_path):
        with RemoteReadReplica(server.host, server.port, mirror_path) as replica:
            writer.submit_add([0, 1, 2, 3]).result()
            assert_matches_oracle(replica, writer)
            writer.compact()
            assert_matches_oracle(replica, writer)
            assert replica.generation == 1
            assert replica.mirror.generation == 1

    def test_keeps_serving_through_a_peer_outage(self, writer, mirror_path):
        import time

        server = SocketServer(writer, port=0).start()
        client = ServiceClient(
            server.host, server.port, connect_retries=2, retry_interval=0.05
        ).connect()
        replica = RemoteReadReplica(
            store_path=mirror_path, client=client, poll_interval=0.0
        )
        try:
            before = replica.metric_by_hyperedge(2, "pagerank")
            server.close()  # the peer goes away entirely
            # Queries degrade to the last synced local state, not errors —
            # and after the first failed poll, the backoff keeps further
            # queries from paying the connect-retry budget again.
            assert replica.metric_by_hyperedge(2, "pagerank") == pytest.approx(before)
            start = time.monotonic()
            assert replica.metric_by_hyperedge(2, "pagerank") == pytest.approx(before)
            assert time.monotonic() - start < 0.5  # served locally, no poll
        finally:
            replica.close()
            client.close()

    def test_sync_reports_and_explicit_force(self, server, writer, mirror_path):
        with RemoteReadReplica(server.host, server.port, mirror_path) as replica:
            assert replica.sync() is None  # token unchanged: no work
            report = replica.sync(force=True)
            assert report is not None and not report.changed
            writer.submit_add([0, 1, 2]).result()
            report = replica.sync()
            assert report is not None and report.wal_records == 1

    def test_mirror_directory_is_writer_locked(self, server, writer, mirror_path):
        with RemoteReadReplica(server.host, server.port, mirror_path):
            with pytest.raises(StoreLockHeldError):
                StoreLock(mirror_path).acquire(blocking=False)
            # A read-only service over the mirror is fine (no lock taken).
            with QueryService(mirror_path, read_only=True) as local_reader:
                assert local_reader.num_components(1) >= 1
        # The lock is released on close.
        StoreLock(mirror_path).acquire(blocking=False).release()

    def test_lock_contention_does_not_leak_the_owned_client(
        self, server, writer, mirror_path
    ):
        """A constructor that fails at lock acquisition must close the
        connection it opened, not strand it in the server's slot table."""
        import time

        with RemoteReadReplica(server.host, server.port, mirror_path):
            with pytest.raises(StoreLockHeldError):
                RemoteReadReplica(server.host, server.port, mirror_path)
            deadline = time.monotonic() + 10
            while server.stats.active_connections > 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert server.stats.active_connections <= 1

    def test_closed_replica_refuses_cleanly(self, server, writer, mirror_path):
        replica = RemoteReadReplica(server.host, server.port, mirror_path)
        replica.close()
        with pytest.raises(StoreError, match="closed"):
            replica.metric(2, "pagerank")
        assert replica.sync() is None
        replica.close()  # idempotent

    def test_replica_can_feed_from_another_replica_server(
        self, server, writer, mirror_path, tmp_path
    ):
        """Chained replication: mirror A serves a socket, mirror B feeds
        from it — fan-out without touching the writer."""
        with RemoteReadReplica(server.host, server.port, mirror_path):
            with QueryService(mirror_path, read_only=True) as mid_service:
                with SocketServer(mid_service, port=0) as mid_server:
                    with RemoteReadReplica(
                        mid_server.host, mid_server.port, str(tmp_path / "second")
                    ) as second:
                        assert_matches_oracle(second, writer)

    def test_shares_an_existing_client(self, server, writer, mirror_path):
        client = ServiceClient(server.host, server.port).connect()
        try:
            with RemoteReadReplica(
                store_path=mirror_path, client=client, poll_interval=0.0
            ) as replica:
                assert_matches_oracle(replica, writer)
            assert client.connected  # a borrowed client is not closed
            assert client.components(1) >= 0
        finally:
            client.close()
