"""AdmissionQueue: batching, durability acknowledgements, failure isolation."""

import threading

import numpy as np
import pytest

from repro.engine.engine import QueryEngine
from repro.service.admission import AdmissionQueue
from repro.service.sync import RWLock
from repro.store.store import IndexStore
from repro.store.persistent import PersistentQueryEngine
from repro.utils.rng import make_rng
from repro.utils.validation import ValidationError


@pytest.fixture
def persistent_engine(community_hypergraph, tmp_path):
    store = IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return PersistentQueryEngine(store, hypergraph=community_hypergraph)


def random_members(h, rng, size=5):
    return np.unique(rng.choice(h.num_vertices, size=size, replace=False)).tolist()


class TestBatching:
    def test_submissions_coalesce_into_one_group_commit(self, persistent_engine):
        """Updates queued while the writer is busy land in one batch: one
        exclusive-lock cycle and one WAL fsync for all of them."""
        lock = RWLock()
        queue = AdmissionQueue(persistent_engine, write_lock=lock, max_batch=64)
        rng = make_rng(0)
        with lock.write():  # stall the writer thread deterministically
            futures = [
                queue.submit_add(random_members(persistent_engine.hypergraph, rng))
                for _ in range(10)
            ]
        for future in futures:
            assert isinstance(future.result(timeout=5), int)
        queue.close()
        stats = queue.stats()
        assert stats.applied == 10
        assert stats.batches == 1
        assert stats.largest_batch == 10
        assert persistent_engine.store.wal.batch_commits == 1
        assert persistent_engine.store.num_wal_records() == 10

    def test_max_batch_caps_coalescing(self, persistent_engine):
        lock = RWLock()
        queue = AdmissionQueue(persistent_engine, write_lock=lock, max_batch=4)
        rng = make_rng(1)
        with lock.write():
            futures = [
                queue.submit_add(random_members(persistent_engine.hypergraph, rng))
                for _ in range(10)
            ]
        for future in futures:
            future.result(timeout=5)
        queue.close()
        stats = queue.stats()
        assert stats.largest_batch <= 4
        assert stats.batches >= 3

    def test_futures_resolve_to_assigned_edge_ids(self, persistent_engine):
        base = persistent_engine.hypergraph.num_edges
        with AdmissionQueue(persistent_engine) as queue:
            f1 = queue.submit_add([0, 1, 2])
            f2 = queue.submit_add([2, 3], name="later")
            assert f1.result(timeout=5) == base
            assert f2.result(timeout=5) == base + 1
            f3 = queue.submit_remove(0)
            assert f3.result(timeout=5) is None


class TestDurability:
    def test_acknowledged_updates_survive_reopen(self, persistent_engine, tmp_path):
        """Anything whose future resolved is recoverable by a new process."""
        rng = make_rng(2)
        with AdmissionQueue(persistent_engine) as queue:
            for _ in range(6):
                queue.submit_add(random_members(persistent_engine.hypergraph, rng))
            queue.submit_remove(1)
            queue.flush()
        reopened = IndexStore.open(persistent_engine.store.path)
        assert reopened.num_wal_records() == 7
        oracle = QueryEngine(reopened.load_hypergraph())
        loaded = reopened.load_index()
        for s in range(1, max(loaded.max_weight, 1) + 1):
            assert loaded.line_graph(s) == oracle.line_graph(s), s

    def test_flush_blocks_until_prior_submissions_applied(self, persistent_engine):
        with AdmissionQueue(persistent_engine) as queue:
            futures = [queue.submit_add([0, 1, 2]) for _ in range(5)]
            queue.flush()
            assert all(f.done() for f in futures)

    def test_plain_engine_is_supported_without_a_store(self, community_hypergraph):
        engine = QueryEngine(community_hypergraph)
        with AdmissionQueue(engine) as queue:
            new_id = queue.submit_add([0, 1, 2]).result(timeout=5)
        assert new_id == community_hypergraph.num_edges
        assert engine.hypergraph.num_edges == community_hypergraph.num_edges + 1


class TestFailFuture:
    """The rejection helper tolerates exactly one race, nothing more."""

    def test_already_resolved_future_is_left_alone(self):
        from concurrent.futures import Future

        from repro.service.admission import _fail_future

        future = Future()
        future.set_result(7)
        _fail_future(future, RuntimeError("boom"))  # must not raise
        assert future.result(timeout=0) == 7

    def test_cancelled_future_is_left_alone(self):
        from concurrent.futures import Future

        from repro.service.admission import _fail_future

        future = Future()
        future.cancel()
        _fail_future(future, RuntimeError("boom"))  # must not raise

    def test_lost_race_after_the_done_check_is_tolerated(self):
        from concurrent.futures import Future, InvalidStateError

        from repro.service.admission import _fail_future

        class RacyFuture(Future):
            """Looks pending at the guard, resolves before set_exception."""

            def done(self):
                return False

            def set_exception(self, exc):
                raise InvalidStateError("resolved in the race window")

        _fail_future(RacyFuture(), RuntimeError("boom"))  # must not raise

    def test_unexpected_errors_are_not_swallowed(self):
        """Regression: a bare ``except Exception`` here also hid
        programming errors (a non-future in the queue, a broken
        subclass) — only the benign resolution race may pass silently."""
        from concurrent.futures import Future

        from repro.service.admission import _fail_future

        class BrokenFuture(Future):
            def done(self):
                return False

            def set_exception(self, exc):
                raise TypeError("not a real future")

        with pytest.raises(TypeError):
            _fail_future(BrokenFuture(), RuntimeError("boom"))


class TestFailureIsolation:
    def test_bad_op_fails_its_future_only(self, persistent_engine):
        lock = RWLock()
        queue = AdmissionQueue(persistent_engine, write_lock=lock)
        with lock.write():  # force all three into one batch
            ok_before = queue.submit_add([0, 1, 2])
            bad = queue.submit_remove(10_000)  # out of range
            ok_after = queue.submit_add([1, 2, 3])
        assert isinstance(ok_before.result(timeout=5), int)
        with pytest.raises(ValidationError, match="out of range"):
            bad.result(timeout=5)
        assert isinstance(ok_after.result(timeout=5), int)
        queue.close()
        stats = queue.stats()
        assert stats.applied == 2
        assert stats.failed == 1
        # The failed op never reached the log.
        assert persistent_engine.store.num_wal_records() == 2

    def test_cancelled_future_is_dropped_not_fatal(self, persistent_engine):
        """Cancelling before the writer claims the op drops the mutation;
        the writer thread keeps running (regression: set_result on a
        cancelled future used to raise and kill the thread)."""
        lock = RWLock()
        queue = AdmissionQueue(persistent_engine, write_lock=lock)
        with lock.write():  # writer stalled: the op is still claimable
            doomed = queue.submit_add([0, 1, 2])
            assert doomed.cancel()
            survivor = queue.submit_add([1, 2, 3])
        assert isinstance(survivor.result(timeout=5), int)
        # The cancelled mutation was never applied nor logged...
        assert persistent_engine.store.num_wal_records() == 1
        # ...and the writer thread still serves later submissions.
        assert isinstance(queue.submit_add([2, 3]).result(timeout=5), int)
        queue.close()

    def test_failed_group_commit_poisons_the_queue(self, persistent_engine, monkeypatch):
        """After an fsync failure the served state may be ahead of the log:
        the batch's futures carry the error, updates already queued behind
        it are failed instead of being acked against a diverged log, and
        further submits refuse."""
        lock = RWLock()
        queue = AdmissionQueue(persistent_engine, write_lock=lock, max_batch=1)

        def broken_batch():
            raise OSError("fsync: no space left on device")

        monkeypatch.setattr(persistent_engine.store, "batch", broken_batch)
        with lock.write():  # queue one batch plus a straggler behind it
            doomed = queue.submit_add([0, 1, 2])
            behind = queue.submit_add([1, 2, 3])
        with pytest.raises(OSError, match="no space"):
            doomed.result(timeout=5)
        with pytest.raises(ValidationError, match="poisoned"):
            behind.result(timeout=5)
        with pytest.raises(ValidationError, match="poisoned"):
            queue.submit_add([1, 2])
        queue.close()

    def test_submit_after_close_is_rejected(self, persistent_engine):
        queue = AdmissionQueue(persistent_engine)
        queue.close()
        with pytest.raises(ValidationError, match="closed"):
            queue.submit_add([0, 1])

    def test_close_drains_pending_work(self, persistent_engine):
        queue = AdmissionQueue(persistent_engine)
        futures = [queue.submit_add([0, 1, 2]) for _ in range(8)]
        queue.close()
        for future in futures:
            assert isinstance(future.result(timeout=5), int)


class TestConcurrentSubmitters:
    def test_many_threads_submit_safely(self, persistent_engine):
        """Producer threads race the writer; every ack is correct and the
        final state matches a from-scratch oracle."""
        queue = AdmissionQueue(persistent_engine, max_batch=8)
        rng_members = [
            random_members(persistent_engine.hypergraph, make_rng(seed))
            for seed in range(24)
        ]
        results = [None] * len(rng_members)

        def producer(start, stop):
            for i in range(start, stop):
                results[i] = queue.submit_add(rng_members[i])

        threads = [
            threading.Thread(target=producer, args=(i * 8, (i + 1) * 8))
            for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        queue.flush()
        ids = sorted(f.result(timeout=5) for f in results)
        base = persistent_engine.store.manifest.num_hyperedges
        assert ids == list(range(base, base + 24))
        queue.close()
        oracle = QueryEngine(persistent_engine.hypergraph)
        for s in (1, 2, 3):
            assert persistent_engine.line_graph(s) == oracle.line_graph(s), s
