"""Distributed tracing across the serving stack.

Covers the per-tier spans (server, admission wait, WAL fsync, engine,
replica sync check), wire-context propagation — including both
backward-compatibility directions: a pre-tracing client frame against a
tracing server, and a tracing client against a handler that strips the
field — the ``trace`` op / ``repro trace`` CLI, the slow-query ring's
``trace_id`` link, and the end-to-end chained-replica trace the feature
exists for.
"""

import json

import pytest

from repro.cli import main
from repro.obs import MetricsRegistry, Tracer, use_registry, use_tracer
from repro.service import QueryService
from repro.service.transport import ServiceClient, SocketServer
from repro.store.store import IndexStore


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


@pytest.fixture
def registry():
    with use_registry(MetricsRegistry()) as reg:
        yield reg


@pytest.fixture
def tracer():
    """Every component constructed in the test records at rate 1."""
    with use_tracer(Tracer(sample_rate=1.0)) as t:
        yield t


def spans_by_name(trace):
    return {span["name"]: span for span in trace["spans"]}


class TestServerSpans:
    def test_request_produces_a_server_root_span(self, store_path, registry, tracer):
        with QueryService(store_path) as svc:
            with SocketServer(svc) as server:
                with ServiceClient(*server.address) as client:
                    client.metric(2, "connected_components")
                    traces = client.traces()
        roots = [t["root"] for t in traces]
        assert "server.metric" in roots
        trace = next(t for t in traces if t["root"] == "server.metric")
        names = spans_by_name(trace)
        root = names["server.metric"]
        assert root["parent_id"] == ""
        assert root["attributes"]["op"] == "metric"
        # The engine compute is a descendant of the server span.
        assert names["engine.metric"]["parent_id"] == root["span_id"]

    def test_failed_request_marks_the_root_errored(
        self, store_path, registry, tracer
    ):
        with QueryService(store_path) as svc:
            with SocketServer(svc) as server:
                with ServiceClient(*server.address) as client:
                    client.call({"op": "metric", "s": 2, "metric": "nope"})
                    traces = client.traces()
        trace = next(t for t in traces if t["root"] == "server.metric")
        assert spans_by_name(trace)["server.metric"]["status"] == "error"

    def test_durable_add_traces_queue_wait_and_fsync(
        self, store_path, registry, tracer
    ):
        with QueryService(store_path) as svc:
            with SocketServer(svc) as server:
                with ServiceClient(*server.address) as client:
                    client.add([0, 1, 2], wait=True)
                    traces = client.traces()
        trace = next(t for t in traces if t["root"] == "server.add")
        names = spans_by_name(trace)
        root = names["server.add"]
        # The queue wait is backfilled from submit/claim stamps, and the
        # group-commit fsync is attributed across the writer thread.
        assert names["admission.queue_wait"]["parent_id"] == root["span_id"]
        assert names["wal.fsync"]["parent_id"] == root["span_id"]

    def test_trace_op_filters_by_id_and_reports_stats(
        self, store_path, registry, tracer
    ):
        with QueryService(store_path) as svc:
            with SocketServer(svc) as server:
                with ServiceClient(*server.address) as client:
                    client.metric(2, "connected_components")
                    client.components(2)
                    all_traces = client.traces(limit=50)
                    target = all_traces[0]["trace_id"]
                    only = client.traces(trace_id=target, limit=50)
                    response = client.call({"op": "trace"})
        assert {t["trace_id"] for t in only} == {target}
        assert response["tracing"]["enabled"] is True
        assert response["tracing"]["kept"] >= 2

    def test_stats_carries_tracing_counters(self, store_path, registry, tracer):
        with QueryService(store_path) as svc:
            with SocketServer(svc) as server:
                with ServiceClient(*server.address) as client:
                    client.metric(2, "connected_components")
                    stats = client.stats()
        tracing = stats["tracing"]
        assert tracing["enabled"] and tracing["sample_rate"] == 1.0
        assert tracing["kept"] >= 1

    def test_untraced_deployment_reports_disabled(self, store_path, registry):
        with QueryService(store_path) as svc:
            tracing = svc.stats()["tracing"]
        assert tracing["enabled"] is False
        assert tracing["kept"] == 0


class TestWireCompatibility:
    def test_pre_tracing_client_frame_against_a_tracing_server(
        self, store_path, registry
    ):
        """A PR-6-era client never sends the ``trace`` field; the tracing
        server starts a fresh root and serves the request unchanged."""
        with use_tracer(Tracer(sample_rate=1.0)):
            svc = QueryService(store_path)
            server = SocketServer(svc).start()
        # The client is constructed under the default (disabled) tracer —
        # exactly what an old client's frames look like on the wire.
        try:
            with ServiceClient(*server.address) as client:
                response = client.call(
                    {"op": "metric", "s": 2, "metric": "connected_components"}
                )
                assert response["ok"]
                traces = client.traces()
        finally:
            server.close()
            svc.close()
        trace = next(t for t in traces if t["root"] == "server.metric")
        assert spans_by_name(trace)["server.metric"]["parent_id"] == ""

    def test_tracing_client_against_a_handler_that_strips_the_field(
        self, store_path, registry, tracer, monkeypatch
    ):
        """A pre-tracing server drops the unknown ``trace`` field on the
        floor; the request must round-trip cleanly regardless."""
        with QueryService(store_path) as svc:
            seen = {}
            original = svc.execute

            def stripping_execute(request):
                request = dict(request)
                seen["had_trace"] = "trace" in request
                request.pop("trace", None)
                return original(request)

            monkeypatch.setattr(svc, "execute", stripping_execute)
            with SocketServer(svc) as server:
                with ServiceClient(*server.address) as client:
                    # An active sampled span is what makes the client
                    # stamp the field (chained replicas do this).
                    with tracer.start_request("test.root"):
                        response = client.call(
                            {"op": "metric", "s": 2, "metric": "connected_components"}
                        )
        assert response["ok"]
        assert seen["had_trace"] is True

    def test_client_context_joins_client_and_server_spans(
        self, store_path, registry, tracer
    ):
        with QueryService(store_path) as svc:
            with SocketServer(svc) as server:
                with ServiceClient(*server.address) as client:
                    with tracer.start_request("test.root") as root:
                        client.metric(2, "connected_components")
                    traces = tracer.finished_traces(
                        trace_id=root.trace_id, limit=None
                    )
        # Same process: the client-side trace record and the server-side
        # one land in the same buffer, sharing the trace id.
        assert len(traces) == 2
        client_side = next(t for t in traces if t["root"] == "test.root")
        server_side = next(t for t in traces if t["root"] == "server.metric")
        client_span = spans_by_name(client_side)["client.metric"]
        # The server's root is parented under the client's span.
        assert spans_by_name(server_side)["server.metric"]["parent_id"] == (
            client_span["span_id"]
        )


class TestChainedReplicaTrace:
    def test_one_trace_spans_replica_server_sync_check_and_engine(
        self, store_path, registry, tracer, tmp_path
    ):
        """The acceptance path: a query against a remote-fed replica
        produces one trace id covering the replica's server span, the
        mirror staleness check, and the engine compute — and, because
        the sync check polls the writer, the writer's server span too."""
        with QueryService(store_path, max_batch=16) as writer:
            with SocketServer(writer) as upstream:
                with QueryService(
                    str(tmp_path / "mirror"),
                    read_only=True,
                    remote_source=upstream.address,
                ) as replica_svc:
                    with SocketServer(replica_svc) as replica_server:
                        with ServiceClient(*replica_server.address) as client:
                            client.metric(2, "connected_components")
                            traces = client.traces(limit=50)
        trace = next(t for t in traces if t["root"] == "server.metric")
        names = spans_by_name(trace)
        root = names["server.metric"]
        sync_check = names["replica.sync_check"]
        engine = names["engine.metric"]
        assert sync_check["parent_id"] == root["span_id"]
        assert engine["parent_id"] == root["span_id"]
        # The staleness poll crossed the wire to the writer under the
        # same trace id (same process here, so same buffer).
        writer_side = [
            t
            for t in traces
            if t["trace_id"] == trace["trace_id"] and t["root"] == "server.stats"
        ]
        assert writer_side, "writer's span did not join the replica's trace"
        poll = spans_by_name(writer_side[0])["server.stats"]
        assert poll["parent_id"] == spans_by_name(trace)["client.stats"]["span_id"]


class TestSlowQueryLink:
    def test_slow_entries_carry_the_trace_id(self, store_path, registry, tracer):
        with QueryService(store_path, slow_query_ms=0.0) as svc:
            with SocketServer(svc) as server:
                with ServiceClient(*server.address) as client:
                    client.metric(2, "connected_components")
                    stats = client.stats()
                    entry = stats["slow_queries"][-1]
                    linked = client.traces(trace_id=entry["trace_id"])
        assert entry["trace_id"]
        assert linked and linked[0]["root"] == "server.metric"

    def test_unsampled_requests_leave_the_id_empty(self, store_path, registry):
        with QueryService(store_path, slow_query_ms=0.0) as svc:
            svc.metric(2, "connected_components")
            entry = svc.stats()["slow_queries"][-1]
        assert entry["trace_id"] == ""


class TestTraceCLI:
    def test_trace_command_renders_span_trees(
        self, store_path, registry, tracer, capsys
    ):
        with QueryService(store_path) as svc:
            with SocketServer(svc) as server:
                with ServiceClient(*server.address) as client:
                    client.metric(2, "connected_components")
                    target = client.traces()[0]["trace_id"]
                address = f"{server.host}:{server.port}"
                assert main(["trace", "--address", address]) == 0
                out = capsys.readouterr().out
                assert f"trace {target}" in out
                assert "server.metric" in out and "engine.metric" in out

                assert main(
                    ["trace", "--address", address, "--trace-id", target]
                ) == 0
                out = capsys.readouterr().out
                assert f"trace {target}" in out

    def test_trace_command_reports_an_empty_buffer(
        self, store_path, registry, tracer, capsys
    ):
        with QueryService(store_path) as svc:
            with SocketServer(svc) as server:
                address = f"{server.host}:{server.port}"
                assert main(
                    ["trace", "--address", address, "--trace-id", "ab" * 8]
                ) == 1
        assert "no finished traces" in capsys.readouterr().out

    def test_stats_command_prints_tracing_rows_and_slow_link(
        self, store_path, registry, tracer, capsys
    ):
        with QueryService(store_path, slow_query_ms=0.0) as svc:
            with SocketServer(svc) as server:
                with ServiceClient(*server.address) as client:
                    client.metric(2, "connected_components")
                    trace_id = client.stats()["slow_queries"][-1]["trace_id"]
                assert main(
                    ["stats", "--address", f"{server.host}:{server.port}"]
                ) == 0
        out = capsys.readouterr().out
        assert "tracing.sample_rate" in out
        assert f"trace_id={trace_id}" in out


class TestStructuredLogs:
    def test_json_lines_carry_the_active_trace_ids(self, registry, tracer, capsys):
        import logging

        from repro.utils.log import JsonLineFormatter, get_logger

        logger = get_logger("test")
        handler = logging.StreamHandler()
        handler.setFormatter(JsonLineFormatter())
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            with tracer.start_request("server.metric") as span:
                logger.info("inside")
            logger.info("outside")
        finally:
            logger.removeHandler(handler)
        lines = [json.loads(line) for line in capsys.readouterr().err.splitlines()]
        inside = next(line for line in lines if line["message"] == "inside")
        outside = next(line for line in lines if line["message"] == "outside")
        assert inside["trace_id"] == span.trace_id
        assert inside["span_id"] == span.span_id
        assert inside["level"] == "INFO" and inside["logger"] == "repro.test"
        assert "trace_id" not in outside

    def test_enable_verbose_swaps_formats_without_stacking_handlers(self):
        import logging

        from repro.utils.log import JsonLineFormatter, enable_verbose, get_logger

        logger = enable_verbose(json_lines=True)
        try:
            count = len(
                [h for h in logger.handlers if isinstance(h, logging.StreamHandler)]
            )
            assert isinstance(logger.handlers[-1].formatter, JsonLineFormatter)
            enable_verbose(json_lines=False)
            assert not isinstance(logger.handlers[-1].formatter, JsonLineFormatter)
            enable_verbose(json_lines=True)
            assert (
                len(
                    [
                        h
                        for h in logger.handlers
                        if isinstance(h, logging.StreamHandler)
                    ]
                )
                == count
            )
        finally:
            for handler in list(get_logger().handlers):
                get_logger().removeHandler(handler)
