"""Traffic-readiness probes: ``QueryService.readiness`` across roles.

The HTTP side of ``/readyz`` is covered in ``tests/obs/test_http.py``;
these tests pin the semantics of the callback the CLI wires into it:
writer ready = lock held and admission healthy, replica ready = store
readable, remote replica ready = last sync succeeded and generation lag
within the threshold.
"""

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.service import QueryService
from repro.service.transport import SocketServer
from repro.store.store import IndexStore


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


@pytest.fixture
def registry():
    with use_registry(MetricsRegistry()) as reg:
        yield reg


class TestWriterReadiness:
    def test_healthy_writer_is_ready(self, store_path, registry):
        with QueryService(store_path) as svc:
            ready, detail = svc.readiness()
        assert ready
        assert detail["role"] == "writer"
        assert detail["generation"] == 0

    def test_closed_service_is_not_ready(self, store_path, registry):
        svc = QueryService(store_path)
        svc.close()
        ready, detail = svc.readiness()
        assert not ready
        assert detail["reason"] == "service closed"

    def test_poisoned_admission_queue_fails_readiness(self, store_path, registry):
        with QueryService(store_path) as svc:
            assert svc.readiness()[0]
            svc._admission._commit_failure = RuntimeError("fsync died")
            ready, detail = svc.readiness()
        assert not ready
        assert "poisoned" in detail["reason"]


class TestLocalReplicaReadiness:
    def test_shared_filesystem_replica_is_ready_while_readable(
        self, store_path, registry
    ):
        with QueryService(store_path, read_only=True) as replica:
            ready, detail = replica.readiness()
        assert ready
        assert detail["role"] == "replica"


class TestRemoteReplicaReadiness:
    def test_remote_replica_ready_after_a_clean_sync(
        self, store_path, registry, tmp_path
    ):
        with QueryService(store_path, max_batch=16) as writer:
            with SocketServer(writer) as upstream:
                with QueryService(
                    str(tmp_path / "mirror"),
                    read_only=True,
                    remote_source=upstream.address,
                ) as replica:
                    ready, detail = replica.readiness()
                    assert ready, detail
                    assert detail["role"] == "replica"
                    assert detail["generation_lag"] == 0

    def test_unreachable_peer_fails_readiness(self, store_path, registry, tmp_path):
        with QueryService(store_path, max_batch=16) as writer:
            upstream = SocketServer(writer).start()
            replica = QueryService(
                str(tmp_path / "mirror"),
                read_only=True,
                remote_source=upstream.address,
                replica_poll_interval=3600.0,  # no sync between probes
            )
            try:
                assert replica.readiness()[0]
                upstream.close()
                ready, detail = replica.readiness()
                assert not ready
                assert detail["reason"] == "peer unreachable"
            finally:
                replica.close()
                upstream.close()

    def test_generation_lag_threshold_gates_readiness(
        self, store_path, registry, tmp_path
    ):
        with QueryService(store_path, max_batch=16) as writer:
            with SocketServer(writer) as upstream:
                replica = QueryService(
                    str(tmp_path / "mirror"),
                    read_only=True,
                    remote_source=upstream.address,
                    replica_poll_interval=3600.0,  # stale on purpose
                )
                try:
                    # The writer compacts: its generation moves ahead of
                    # the replica's mirrored snapshot.
                    writer.submit_add([0, 1, 2]).result()
                    writer.compact()
                    ready, detail = replica.readiness(max_generation_lag=0)
                    assert not ready
                    assert detail["reason"] == "generation lag above threshold"
                    # A forgiving threshold (or None) accepts the same lag.
                    assert replica.readiness(max_generation_lag=5)[0]
                    assert replica.readiness(max_generation_lag=None)[0]
                finally:
                    replica.close()
