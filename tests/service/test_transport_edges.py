"""Transport edge cases: malformed peers, restarts, replica churn.

The server must shrug off adversarial or unlucky byte streams (truncated
frames, oversized frames, wrong protocol versions, garbage JSON) without
taking down other connections; the client must survive a server restart;
and a read-replica server must keep answering correctly while a writer
compacts the store underneath it.
"""

import socket
import threading

import pytest

from repro.service import (
    CompactionPolicy,
    QueryService,
    ServiceClient,
    SocketServer,
)
from repro.service.transport import ProtocolVersionError, TransportError
from repro.service.transport.framing import (
    LENGTH_PREFIX,
    PROTOCOL_VERSION,
    recv_frame,
    send_frame,
)
from repro.store.store import IndexStore
from repro.utils.rng import make_rng


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


@pytest.fixture
def writer(store_path):
    with QueryService(store_path, max_batch=16) as service:
        yield service


@pytest.fixture
def server(writer):
    with SocketServer(writer, port=0, max_frame_bytes=1 << 20) as srv:
        yield srv


def handshake(address):
    sock = socket.create_connection(address)
    send_frame(sock, {"op": "hello", "protocol": PROTOCOL_VERSION})
    assert recv_frame(sock)["ok"]
    return sock


class TestMalformedPeers:
    def test_truncated_frame_drops_only_that_connection(self, server):
        sock = handshake(server.address)
        sock.sendall(LENGTH_PREFIX.pack(100) + b'{"op": "st')  # 90 bytes short
        sock.close()
        # The server survives: a fresh client is served normally.
        with ServiceClient(*server.address) as client:
            assert client.components(1) >= 0
        assert server.stats.active_connections <= 1

    def test_oversized_frame_answered_then_closed(self, server):
        sock = handshake(server.address)
        sock.sendall(LENGTH_PREFIX.pack(server.max_frame_bytes + 1))
        response = recv_frame(sock)
        assert response["ok"] is False
        assert response["code"] == "bad_frame"
        assert recv_frame(sock) is None  # server closed the connection
        sock.close()
        assert server.stats.frames_rejected >= 1

    def test_garbage_json_frame_answered_then_closed(self, server):
        sock = handshake(server.address)
        body = b"\xff\xfe not json"
        sock.sendall(LENGTH_PREFIX.pack(len(body)) + body)
        response = recv_frame(sock)
        assert response["ok"] is False
        assert response["code"] == "bad_frame"
        assert recv_frame(sock) is None
        sock.close()

    def test_protocol_version_mismatch_rejected(self, server):
        sock = socket.create_connection(server.address)
        send_frame(sock, {"op": "hello", "protocol": PROTOCOL_VERSION + 7})
        response = recv_frame(sock)
        assert response["ok"] is False
        assert response["code"] == "protocol_mismatch"
        assert response["protocol"] == PROTOCOL_VERSION  # names both versions
        assert recv_frame(sock) is None
        sock.close()

    def test_protocol_mismatch_raises_without_retries(self, server, monkeypatch):
        client = ServiceClient(*server.address, connect_retries=50)
        monkeypatch.setattr(
            "repro.service.transport.client.hello_request",
            lambda: {"op": "hello", "protocol": 99},
        )
        with pytest.raises(ProtocolVersionError):
            client.connect()  # immediate: retrying cannot fix a version skew

    def test_first_frame_not_hello_rejected(self, server):
        sock = socket.create_connection(server.address)
        send_frame(sock, {"op": "components", "s": 1})
        response = recv_frame(sock)
        assert response["ok"] is False
        assert response["code"] == "protocol_mismatch"
        sock.close()

    def test_batch_cannot_smuggle_transport_ops(self, server):
        with ServiceClient(*server.address) as client:
            response = client.call(
                {"op": "batch", "requests": [{"op": "goodbye"}]}
            )
            assert response["ok"] is False
            assert response["code"] == "bad_request"

    def test_oversized_response_answered_with_error_frame(self, writer):
        """A response over the frame cap becomes a small error frame; the
        connection (and pairing) survives instead of dying as a bare EOF."""
        server = SocketServer(writer, port=0, max_frame_bytes=256).start()
        try:
            with ServiceClient(
                server.host, server.port, max_frame_bytes=256
            ) as client:
                response = client.call(
                    {"op": "metric", "s": 1, "metric": "pagerank"}
                )
                assert response["ok"] is False
                assert response["code"] == "bad_frame"
                assert "frame cap" in response["error"]
                # Same connection keeps serving small responses.
                small = client.call({"op": "components", "s": 1})
                assert small["ok"] is True
        finally:
            server.close()


class TestClientReconnect:
    def test_client_survives_a_server_restart(self, writer):
        first = SocketServer(writer, port=0).start()
        port = first.port
        client = ServiceClient(first.host, port)
        expected = client.metric(2, "pagerank")
        first.close()
        # Same port, fresh server — as after a rolling restart.
        second = SocketServer(writer, host=first.host, port=port).start()
        try:
            assert client.metric(2, "pagerank") == pytest.approx(expected)
            assert second.stats.connections_accepted == 1
        finally:
            client.close()
            second.close()

    def test_reconnect_disabled_raises_instead(self, writer):
        first = SocketServer(writer, port=0).start()
        client = ServiceClient(
            first.host, first.port, reconnect=False, connect_retries=2
        ).connect()
        first.close()
        with pytest.raises(TransportError):
            client.call({"op": "components", "s": 1})
        client.close()

    def test_updates_are_never_silently_resent(self, writer):
        """A connection loss mid-update raises: its fate is unknown."""
        server = SocketServer(writer, port=0).start()
        client = ServiceClient(server.host, server.port).connect()
        client.add([0, 1, 2])  # the connection works
        server.close()
        with pytest.raises(TransportError, match="not idempotent"):
            client.add([3, 4, 5])
        client.close()

    def test_dead_server_reconnect_raises_typed_transport_error(self, writer):
        """Regression (client error contract): every failure mode of the
        mid-call reconnect — including ``connect()`` exhausting its retries
        against an address nothing listens on — must surface as
        :class:`TransportError`, never a raw ``OSError``."""
        server = SocketServer(writer, port=0).start()
        client = ServiceClient(
            server.host, server.port, connect_retries=2, retry_interval=0.05
        ).connect()
        assert client.components(1) >= 0
        server.close()  # the port is dead: reconnects are refused
        with pytest.raises(TransportError) as excinfo:
            client.call({"op": "components", "s": 1})
        assert not isinstance(excinfo.value, OSError)
        # Non-idempotent ops fail typed too (here in connect(): the socket
        # is already known-dead, so the update was never sent at all).
        with pytest.raises(TransportError) as excinfo:
            client.call({"op": "add", "members": [0, 1], "wait": True})
        assert not isinstance(excinfo.value, OSError)
        client.close()

    def test_handshake_error_from_mid_call_reconnect_stays_typed(
        self, writer, monkeypatch
    ):
        """A version skew discovered by the *reconnect* (rolling upgrade
        under our feet) surfaces as ProtocolVersionError — not a raw
        OSError, and not an endless retry loop."""
        server = SocketServer(writer, port=0).start()
        client = ServiceClient(server.host, server.port, connect_retries=50).connect()
        assert client.components(1) >= 0
        server.close()
        second = SocketServer(writer, host=server.host, port=server.port).start()
        monkeypatch.setattr(
            "repro.service.transport.client.hello_request",
            lambda: {"op": "hello", "protocol": 99},
        )
        try:
            with pytest.raises(ProtocolVersionError):
                client.call({"op": "components", "s": 1})
        finally:
            client.close()
            second.close()

    def test_batches_containing_updates_are_not_resent_either(self, writer):
        """A batch is only as idempotent as its contents: one add inside
        makes the whole frame non-retryable (a committed batch must not be
        applied twice on reconnect)."""
        server = SocketServer(writer, port=0).start()
        client = ServiceClient(server.host, server.port).connect()
        queries = [{"op": "components", "s": 1}, {"op": "components", "s": 2}]
        assert all(r["ok"] for r in client.batch(queries))
        server.close()
        with pytest.raises(TransportError, match="not idempotent"):
            client.batch(queries + [{"op": "add", "members": [0, 1], "wait": True}])
        client.close()
        # Pure-query batches stay retryable: a fresh server on the same
        # port serves the reconnect-and-retry path.
        second = SocketServer(writer, host=server.host, port=server.port).start()
        try:
            assert all(r["ok"] for r in client.batch(queries))
        finally:
            client.close()
            second.close()


class TestReplicaUnderCompaction:
    def test_concurrent_clients_hammer_a_replica_through_compactions(
        self, store_path, community_hypergraph
    ):
        """N clients query one replica server while the writer batches
        updates and compacts; every response is served, none is wrong for
        the generation it came from, and all converge to the oracle."""
        policy = CompactionPolicy(max_wal_records=8, max_wal_bytes=None)
        writer = QueryService(
            store_path, max_batch=8, compaction=policy, compaction_poll_interval=0.02
        )
        replica = QueryService(store_path, read_only=True)
        server = SocketServer(replica, port=0, max_connections=8)
        server.start()
        stop = threading.Event()
        failures = []
        counts = [0] * 4

        def hammer(worker_id):
            try:
                with ServiceClient(server.host, server.port) as client:
                    while not stop.is_set():
                        responses = client.batch(
                            [
                                {"op": "metric", "s": 2, "metric": "pagerank"},
                                {"op": "components", "s": 1},
                            ]
                        )
                        if not all(r["ok"] for r in responses):
                            failures.append(responses)
                            return
                        counts[worker_id] += 1
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        try:
            rng = make_rng(11)
            h = community_hypergraph
            for _ in range(30):
                members = sorted(set(int(v) for v in rng.choice(h.num_vertices, 5)))
                writer.submit_add(members)
            writer.flush()
            writer.compact()
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
        assert not failures, failures[:1]
        assert all(c > 0 for c in counts)  # every client got served
        assert writer.generation >= 1  # at least one compaction happened

        # Convergence: the replica now serves exactly the writer's state.
        with ServiceClient(server.host, server.port) as client:
            deadline_values = client.metric(2, "pagerank")
        assert deadline_values == pytest.approx(
            writer.metric_by_hyperedge(2, "pagerank")
        )
        server.close()
        replica.close()
        writer.close()
