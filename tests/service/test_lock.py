"""StoreLock single-writer protocol and the RWLock primitive."""

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.service.lock import StoreLock, StoreLockHeldError
from repro.service.sync import RWLock
from repro.store.format import LOCK_NAME


class TestStoreLock:
    def test_acquire_release_cycle(self, tmp_path):
        lock = StoreLock(tmp_path)
        assert not lock.held
        lock.acquire()
        assert lock.held
        assert os.path.isfile(tmp_path / LOCK_NAME)
        lock.release()
        assert not lock.held
        # Released: a fresh handle can take it immediately.
        with StoreLock(tmp_path) as second:
            assert second.held

    def test_second_handle_is_rejected_nonblocking(self, tmp_path):
        with StoreLock(tmp_path, owner="writer-1"):
            with pytest.raises(StoreLockHeldError, match="writer-1"):
                StoreLock(tmp_path).acquire(blocking=False)

    def test_blocking_acquire_times_out(self, tmp_path):
        with StoreLock(tmp_path):
            start = time.monotonic()
            with pytest.raises(StoreLockHeldError):
                StoreLock(tmp_path).acquire(timeout=0.2)
            assert time.monotonic() - start >= 0.15

    def test_lease_metadata_names_the_holder(self, tmp_path):
        with StoreLock(tmp_path, owner="the-service") as lock:
            lease = lock.holder()
            assert lease["owner"] == "the-service"
            assert lease["pid"] == os.getpid()
            assert "host" in lease and "acquired_unix" in lease

    def test_release_is_idempotent(self, tmp_path):
        lock = StoreLock(tmp_path).acquire()
        lock.release()
        lock.release()

    def test_double_acquire_same_handle_rejected(self, tmp_path):
        lock = StoreLock(tmp_path).acquire()
        try:
            with pytest.raises(Exception, match="already held"):
                lock.acquire()
        finally:
            lock.release()

    def test_cross_process_exclusion(self, tmp_path):
        """A lock held by another *process* blocks acquisition here, and a
        dead holder's lock is reclaimable (the kernel releases flocks)."""
        script = (
            "import sys, time\n"
            "from repro.service.lock import StoreLock\n"
            "lock = StoreLock(sys.argv[1], owner='other-proc').acquire()\n"
            "print('LOCKED', flush=True)\n"
            "time.sleep(30)\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path)],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "LOCKED"
            with pytest.raises(StoreLockHeldError, match="other-proc"):
                StoreLock(tmp_path).acquire(blocking=False)
        finally:
            proc.kill()
            proc.wait()
        # Holder died: the advisory lock is gone, acquisition succeeds.
        with StoreLock(tmp_path) as lock:
            assert lock.held


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read():
                inside.wait()  # all three readers in simultaneously

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not any(t.is_alive() for t in threads)

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        order = []

        def writer():
            with lock.write():
                order.append("w-in")
                time.sleep(0.1)
                order.append("w-out")

        def reader():
            with lock.read():
                order.append("r")

        with lock.read():  # writer must wait for this reader
            t_w = threading.Thread(target=writer)
            t_w.start()
            time.sleep(0.05)  # let the writer start waiting
        t_r = threading.Thread(target=reader)
        t_r.start()
        t_w.join(timeout=5)
        t_r.join(timeout=5)
        # The reader that arrived while the writer waited/held runs after it
        # (writer preference), never between w-in and w-out.
        assert order.index("w-out") == order.index("w-in") + 1

    def test_writer_preference_blocks_new_readers(self):
        lock = RWLock()
        results = []
        release_first_reader = threading.Event()

        def long_reader():
            with lock.read():
                release_first_reader.wait(timeout=5)
            results.append("r1-done")

        def writer():
            with lock.write():
                results.append("w-done")

        def late_reader():
            with lock.read():
                results.append("r2-done")

        t1 = threading.Thread(target=long_reader)
        t1.start()
        time.sleep(0.02)
        tw = threading.Thread(target=writer)
        tw.start()
        time.sleep(0.02)
        t2 = threading.Thread(target=late_reader)
        t2.start()
        time.sleep(0.05)
        # The late reader queued behind the waiting writer.
        assert "r2-done" not in results
        release_first_reader.set()
        for t in (t1, tw, t2):
            t.join(timeout=5)
        assert results.index("w-done") < results.index("r2-done")
