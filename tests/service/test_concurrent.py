"""Acceptance: two processes share one store — a writer admitting batched
updates while a read-replica process serves correct s-metric queries and
hot-reloads across compactions.

The reader is a real subprocess running ``python -m repro serve
--read-only`` (the CLI's JSONL loop); every served metric value is
cross-checked against the single-process pipeline oracle
(:class:`repro.core.pipeline.SLinePipeline`) run on the writer's current
hypergraph.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core.pipeline import SLinePipeline
from repro.service import QueryService
from repro.store.store import IndexStore
from repro.utils.rng import make_rng


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


@pytest.fixture
def reader(store_path):
    """A read-replica serving process sharing the store directory."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--path", store_path, "--read-only"],
        env=_env(),
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        bufsize=1,
    )
    ready = json.loads(proc.stdout.readline())
    assert ready["op"] == "ready" and ready["read_only"]
    yield proc
    if proc.poll() is None:
        try:
            proc.stdin.write('{"op": "stop"}\n')
            proc.stdin.flush()
            proc.wait(timeout=10)
        except (BrokenPipeError, subprocess.TimeoutExpired):
            proc.kill()
            proc.wait()
    proc.stdin.close()
    proc.stdout.close()
    proc.stderr.close()


def ask(proc, request):
    proc.stdin.write(json.dumps(request) + "\n")
    proc.stdin.flush()
    return json.loads(proc.stdout.readline())


def oracle_metric(h, s, metric):
    """The single-process five-stage pipeline, keyed by hyperedge ID."""
    pipeline = SLinePipeline(
        metrics=(metric,), drop_empty_edges=False, drop_isolated_vertices=False
    )
    result = pipeline.run(h, s)
    return {str(k): v for k, v in result.metric_by_hyperedge(metric).items()}


def random_members(h, rng, size=5):
    return np.unique(rng.choice(h.num_vertices, size=size, replace=False)).tolist()


class TestWriterAndReaderProcessesShareTheStore:
    def test_reader_serves_updates_and_hot_reloads_after_compaction(
        self, store_path, reader, community_hypergraph
    ):
        with QueryService(store_path, max_batch=16) as writer:
            # 1. The reader serves the snapshot state, matching the oracle.
            response = ask(reader, {"op": "metric", "s": 2, "metric": "pagerank"})
            assert response["ok"], response
            assert response["generation"] == 0
            assert response["values"] == pytest.approx(
                oracle_metric(community_hypergraph, 2, "pagerank")
            )

            # 2. A batch of updates goes through async admission; once
            #    flush() returns they are durable, and the reader's next
            #    query (change-token poll) must serve the updated state.
            rng = make_rng(13)
            for _ in range(8):
                writer.submit_add(random_members(writer.engine.hypergraph, rng))
            writer.submit_remove(1)
            writer.flush()
            h_now = writer.engine.hypergraph
            for s, metric in [(1, "connected_components"), (2, "pagerank")]:
                response = ask(reader, {"op": "metric", "s": s, "metric": metric})
                assert response["ok"], response
                assert response["values"] == pytest.approx(
                    oracle_metric(h_now, s, metric)
                ), (s, metric)
            # Batched admission: far fewer group commits than records.
            stats = writer.admission_stats()
            assert stats.applied == 9
            assert stats.batches <= stats.applied

            # 3. Compaction swaps in a new generation; the reader hot-reloads
            #    (old mmaps swept) and keeps serving identical values.
            assert writer.compact()
            for s, metric in [(1, "connected_components"), (2, "pagerank")]:
                response = ask(reader, {"op": "metric", "s": s, "metric": metric})
                assert response["ok"], response
                assert response["generation"] == 1, response
                assert response["values"] == pytest.approx(
                    oracle_metric(h_now, s, metric)
                ), (s, metric)

            # 4. More updates after the compaction are picked up too.
            writer.submit_add(random_members(writer.engine.hypergraph, rng))
            writer.flush()
            response = ask(reader, {"op": "metric", "s": 2, "metric": "pagerank"})
            assert response["values"] == pytest.approx(
                oracle_metric(writer.engine.hypergraph, 2, "pagerank")
            )

    def test_reader_components_and_sweep_requests(self, store_path, reader):
        with QueryService(store_path) as writer:
            writer.submit_add([0, 1, 2, 3, 4])
            writer.flush()
            counts = ask(reader, {"op": "sweep", "s_min": 1, "s_max": 3})
            expected = writer.sweep(range(1, 4))
            assert counts["edge_counts"] == {
                str(s): n for s, n in expected.edge_counts.items()
            }
            components = ask(reader, {"op": "components", "s": 1})
            assert components["count"] == writer.num_components(1)

    def test_second_writer_process_is_locked_out(self, store_path):
        with QueryService(store_path):
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "serve", "--path", store_path],
                env=_env(),
                input="",
                capture_output=True,
                text=True,
                timeout=60,
            )
            assert proc.returncode != 0
            assert "StoreLockHeldError" in proc.stderr
