"""Acceptance: the serving topology crosses process *and* socket borders.

A writer :class:`SocketServer` (in-process, so the test can consult the
writer's hypergraph for the oracle) plus a ``python -m repro serve
--read-only --listen`` replica server subprocess share one store; remote
reader clients in separate OS processes drive centrality and component
queries over TCP.  Every served value must be byte-identical (JSON text)
to the :class:`repro.core.pipeline.SLinePipeline` oracle on the writer's
current hypergraph — across batched updates and a compaction-triggered
hot reload.
"""

import json
import multiprocessing as mp
import os
import subprocess
import sys
import time

import pytest

from repro.core.pipeline import SLinePipeline
from repro.service import (
    QueryService,
    ServiceClient,
    SocketServer,
    StoreLockHeldError,
)
from repro.store.store import IndexStore
from repro.utils.rng import make_rng


def _env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.fixture
def store_path(community_hypergraph, tmp_path):
    IndexStore.build(community_hypergraph, tmp_path / "idx", num_shards=4)
    return str(tmp_path / "idx")


@pytest.fixture
def replica_server(store_path):
    """A ``serve --read-only --listen`` subprocess; yields its address."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--path", store_path,
            "--read-only", "--listen", "127.0.0.1:0",
        ],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        bufsize=1,
    )
    listening = json.loads(proc.stdout.readline())
    assert listening["op"] == "listening" and listening["read_only"]
    yield (listening["host"], listening["port"])
    proc.terminate()
    proc.wait(timeout=30)
    proc.stdout.close()
    proc.stderr.close()


def oracle_json(h, s, metric):
    """Pipeline oracle, serialised exactly like the wire's ``values``."""
    pipeline = SLinePipeline(
        metrics=(metric,), drop_empty_edges=False, drop_isolated_vertices=False
    )
    values = pipeline.run(h, s).metric_by_hyperedge(metric)
    return json.dumps(
        {str(k): float(v) for k, v in sorted(values.items())}, sort_keys=True
    )


def reader_process(address, phases, results):
    """Remote client: each phase, serve queries and report the raw JSON."""
    host, port = address
    with ServiceClient(host, port) as client:
        while True:
            phase = phases.get()
            if phase is None:
                return
            answers = {}
            for s, metric in [(2, "pagerank"), (1, "connected_components")]:
                response = client.request({"op": "metric", "s": s, "metric": metric})
                answers[f"{metric}/{s}"] = json.dumps(
                    response["values"], sort_keys=True
                )
            answers["components/2"] = client.components(2)
            results.put((phase, answers, client.generation()))


def await_convergence(monitor, fingerprint, timeout=60.0):
    deadline = time.monotonic() + timeout
    while monitor.fingerprint() != fingerprint:
        assert time.monotonic() < deadline, "replica did not catch up"
        time.sleep(0.05)


NUM_READERS = 2


class TestRemoteServingAcceptance:
    def test_remote_readers_serve_oracle_values_across_updates_and_compaction(
        self, store_path, replica_server
    ):
        ctx = mp.get_context("spawn")
        phases = [ctx.Queue() for _ in range(NUM_READERS)]
        results = ctx.Queue()
        readers = [
            ctx.Process(target=reader_process, args=(replica_server, phases[i], results))
            for i in range(NUM_READERS)
        ]
        for proc in readers:
            proc.start()

        def run_phase(name, writer):
            h = writer.engine.hypergraph
            expected = {
                "pagerank/2": oracle_json(h, 2, "pagerank"),
                "connected_components/1": oracle_json(h, 1, "connected_components"),
                "components/2": SLinePipeline(
                    metrics=("connected_components",)
                ).run(h, 2).num_components(),
            }
            for queue in phases:
                queue.put(name)
            for _ in readers:
                phase, answers, generation = results.get(timeout=120)
                assert phase == name
                assert answers == expected, f"reader diverged in phase {name}"
            return generation

        try:
            with QueryService(store_path, max_batch=16) as writer:
                with SocketServer(writer, port=0) as writer_server:
                    with ServiceClient(*replica_server) as monitor, ServiceClient(
                        *writer_server.address
                    ) as updater:
                        # Phase 1: the snapshot state.
                        generation = run_phase("snapshot", writer)
                        assert generation == 0

                        # Phase 2: batched updates over the writer socket,
                        # every ack durable before the oracle is computed.
                        rng = make_rng(23)
                        h = writer.engine.hypergraph
                        for _ in range(10):
                            members = sorted(
                                set(int(v) for v in rng.choice(h.num_vertices, 5))
                            )
                            updater.add(members, wait=True)
                        updater.remove(1, wait=True)
                        await_convergence(monitor, writer.engine.fingerprint())
                        run_phase("updated", writer)

                        # Phase 3: compaction triggers the replica hot reload.
                        new_generation = updater.compact()
                        assert new_generation == 1
                        await_convergence(monitor, writer.engine.fingerprint())
                        generation = run_phase("compacted", writer)
                        assert generation == 1
        finally:
            for queue in phases:
                queue.put(None)
            for proc in readers:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - cleanup on failure
                    proc.terminate()

    def test_writer_cli_server_locks_out_a_second_writer(self, store_path):
        """A serve --listen writer subprocess holds the single-writer lock."""
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--path", store_path,
                "--listen", "127.0.0.1:0",
            ],
            env=_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            bufsize=1,
        )
        try:
            listening = json.loads(proc.stdout.readline())
            assert not listening["read_only"]
            with pytest.raises(StoreLockHeldError):
                QueryService(store_path)
            # And the socket actually serves.
            with ServiceClient("127.0.0.1", listening["port"]) as client:
                assert client.components(1) >= 0
        finally:
            proc.terminate()
            proc.wait(timeout=30)
            proc.stdout.close()
            proc.stderr.close()
