"""The named-failpoint subsystem: API, grammar, spawn propagation."""

import errno
import json
import os
import subprocess
import sys
import time

import pytest

from repro.chaos import failpoints as fp
from repro.obs import MetricsRegistry, render_prometheus, use_registry


@pytest.fixture(autouse=True)
def clean_failpoints():
    fp.reset()
    yield
    fp.reset()


class TestActivation:
    def test_error_action_raises_a_typed_oserror(self):
        fp.activate("wal.append", "error")
        with pytest.raises(fp.FailpointError) as err:
            fp.fire("wal.append")
        assert err.value.errno == errno.EIO
        assert err.value.point == "wal.append"
        assert isinstance(err.value, OSError)

    def test_error_value_carries_a_custom_errno(self):
        fp.activate("wal.append", "error", value=28)
        with pytest.raises(fp.FailpointError) as err:
            fp.fire("wal.append")
        assert err.value.errno == errno.ENOSPC

    def test_drop_action_is_a_connection_error(self):
        fp.activate("transport.send", "drop")
        with pytest.raises(fp.FailpointDropConnection):
            fp.fire("transport.send")
        assert issubclass(fp.FailpointDropConnection, ConnectionError)

    def test_delay_action_sleeps_for_the_value_in_ms(self):
        fp.activate("service.execute", "delay", value=50)
        start = time.perf_counter()
        fp.fire("service.execute")
        assert time.perf_counter() - start >= 0.045

    def test_unarmed_points_are_inert(self):
        fp.fire("wal.append")  # nothing armed: must not raise
        fp.activate("wal.fsync", "error")
        fp.fire("wal.append")  # a DIFFERENT point is armed: still inert

    def test_unknown_point_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint"):
            fp.activate("wal.appendd", "error")

    def test_unknown_action_is_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint action"):
            fp.activate("wal.append", "explode")

    def test_non_positive_count_is_rejected(self):
        with pytest.raises(ValueError, match="count must be positive"):
            fp.activate("wal.append", "error", count=0)

    def test_deactivate_and_reset(self):
        fp.activate("wal.append", "error")
        assert fp.is_active("wal.append")
        assert fp.deactivate("wal.append") is True
        assert fp.deactivate("wal.append") is False
        assert not fp.is_active("wal.append")
        fp.activate("wal.fsync", "error")
        fp.reset()
        assert fp.active() == []
        fp.fire("wal.fsync")  # inert again


class TestCounts:
    def test_count_limited_point_self_disarms(self):
        fp.activate("wal.append", "error", count=2)
        for _ in range(2):
            with pytest.raises(fp.FailpointError):
                fp.fire("wal.append")
        assert not fp.is_active("wal.append")
        fp.fire("wal.append")  # third pass: disarmed, no raise

    def test_hits_survive_disarm(self):
        fp.activate("wal.append", "error", count=1)
        with pytest.raises(fp.FailpointError):
            fp.fire("wal.append")
        fp.activate("transport.send", "delay", value=0)
        fp.fire("transport.send")
        assert fp.hits() == {"wal.append": 1, "transport.send": 1}

    def test_hit_counter_lands_on_the_metrics_registry(self):
        with use_registry(MetricsRegistry()) as registry:
            fp.activate("admission.commit", "error", count=1)
            with pytest.raises(fp.FailpointError):
                fp.fire("admission.commit")
            text = render_prometheus(registry)
        assert 'chaos_failpoint_hits_total{point="admission.commit"} 1' in text


class TestSpecGrammar:
    def test_parse_round_trips_format(self):
        spec = fp.format_spec("wal.append", "error", value=28, count=3)
        assert spec == "wal.append=error:28*3"
        (parsed,) = fp.parse_spec(spec)
        assert parsed == {
            "point": "wal.append", "action": "error", "value": 28.0, "count": 3,
        }

    def test_parse_multiple_specs(self):
        specs = fp.parse_spec("wal.append=error:28*1; transport.send=delay:50;")
        assert [s["point"] for s in specs] == ["wal.append", "transport.send"]
        assert specs[1] == {
            "point": "transport.send", "action": "delay", "value": 50.0,
            "count": None,
        }

    def test_bad_spec_is_rejected(self):
        with pytest.raises(ValueError, match="bad failpoint spec"):
            fp.parse_spec("wal.append")

    def test_env_spec_serialises_the_armed_points(self):
        fp.activate("wal.append", "error", value=28, count=2)
        fp.activate("transport.send", "delay", value=50)
        assert fp.env_spec() == "transport.send=delay:50;wal.append=error:28*2"

    def test_install_from_env(self):
        installed = fp.install_from_env({fp.ENV_VAR: "wal.fsync=error*1"})
        assert installed == 1
        assert fp.is_active("wal.fsync")

    def test_install_from_empty_env_is_a_no_op(self):
        assert fp.install_from_env({}) == 0
        assert fp.active() == []


class TestRemoteControlGate:
    def test_disabled_without_the_env_var(self):
        assert fp.remote_control_enabled({}) is False
        assert fp.remote_control_enabled({fp.CONTROL_ENV_VAR: "0"}) is False

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_enabled_values(self, value):
        assert fp.remote_control_enabled({fp.CONTROL_ENV_VAR: value}) is True


class TestSpawnPropagation:
    """REPRO_FAILPOINTS must arm failpoints in spawned child processes."""

    def _child_env(self, spec):
        env = dict(os.environ)
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env[fp.ENV_VAR] = spec
        return env

    def test_child_process_arms_inherited_points_at_import(self):
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.chaos import failpoints as f; import json; "
                "print(json.dumps(f.active()))",
            ],
            env=self._child_env("wal.append=error:28*2;transport.send=delay:50"),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert out.returncode == 0, out.stderr
        active = {d["point"]: d for d in json.loads(out.stdout)}
        assert set(active) == {"wal.append", "transport.send"}
        assert active["wal.append"]["remaining"] == 2
        assert active["wal.append"]["value"] == 28.0
        assert active["transport.send"]["remaining"] is None

    def test_child_actually_fires_the_inherited_point(self):
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.chaos import failpoints as f\n"
                "try:\n"
                "    f.fire('wal.append')\n"
                "    print('no-error')\n"
                "except f.FailpointError as exc:\n"
                "    print('errno', exc.errno)\n",
            ],
            env=self._child_env("wal.append=error:28*1"),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "errno 28"
