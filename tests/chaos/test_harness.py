"""Chaos-harness building blocks (no subprocesses: the fast pieces)."""

import json

import pytest

from repro.chaos.harness import (
    ChaosHarness,
    ScenarioError,
    UpdateLedger,
    diff_stores,
    metric_value,
    oracle_values_json,
    percentile,
    scrape_metrics,
    wait_until,
)
from repro.obs import MetricsHTTPServer, MetricsRegistry


class TestWaitUntil:
    def test_returns_elapsed_once_true(self):
        assert wait_until(lambda: True, timeout=1.0) < 1.0

    def test_exceptions_count_as_not_yet(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ConnectionRefusedError()
            return True

        wait_until(flaky, timeout=5.0, interval=0.01)
        assert len(calls) == 3

    def test_timeout_raises_scenario_error(self):
        with pytest.raises(ScenarioError, match="never-true"):
            wait_until(
                lambda: False, timeout=0.1, interval=0.01,
                description="never-true",
            )


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0.0

    def test_p95_of_a_spread(self):
        values = list(range(100))
        assert percentile(values, 0.95) == 94
        assert percentile(values, 0.0) == 0
        assert percentile(values, 1.0) == 99


class TestScrape:
    def test_scrape_and_label_matching(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "hits", ("point",)).labels(
            point="wal.append"
        ).inc(3)
        registry.gauge("lag", "lag").set(2.5)
        with MetricsHTTPServer(registry=registry) as server:
            scraped = scrape_metrics(server.url)
        assert metric_value(scraped, "lag") == 2.5
        assert metric_value(scraped, "hits_total", {"point": "wal.append"}) == 3.0
        assert metric_value(scraped, "hits_total", {"point": "other"}) is None
        assert metric_value(scraped, "absent") is None


class TestDiffStores:
    def _fill(self, root, files):
        for name, content in files.items():
            path = root / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(content)

    def test_identical_stores_have_no_diffs(self, tmp_path):
        files = {"manifest.json": b"{}", "shards/s0.npz": b"abc"}
        self._fill(tmp_path / "a", files)
        self._fill(tmp_path / "b", files)
        assert diff_stores(str(tmp_path / "a"), str(tmp_path / "b")) == []

    def test_bookkeeping_files_are_ignored(self, tmp_path):
        self._fill(tmp_path / "a", {"manifest.json": b"{}", "writer.lock": b"a"})
        self._fill(
            tmp_path / "b",
            {
                "manifest.json": b"{}",
                "writer.lock": b"b",
                "replication.json": b"{}",
                "shards/s1.npz.staged": b"tmp",
                "wal.jsonl.sync": b"tmp",
            },
        )
        assert diff_stores(str(tmp_path / "a"), str(tmp_path / "b")) == []

    def test_differences_are_reported(self, tmp_path):
        self._fill(tmp_path / "a", {"manifest.json": b"{1}", "only_a": b"x"})
        self._fill(tmp_path / "b", {"manifest.json": b"{2}", "only_b": b"y"})
        problems = diff_stores(str(tmp_path / "a"), str(tmp_path / "b"))
        assert "only in writer: only_a" in problems
        assert "only in mirror: only_b" in problems
        assert "bytes differ: manifest.json" in problems


class TestUpdateLedger:
    def test_resolve_survived_folds_into_acked(self):
        ledger = UpdateLedger(acked=[[0, 1]], indeterminate=[2, 3])
        ledger.resolve(survived=True)
        assert ledger.acked == [[0, 1], [2, 3]]
        assert ledger.indeterminate is None

    def test_resolve_dead_drops_the_op(self):
        ledger = UpdateLedger(acked=[[0, 1]], indeterminate=[2, 3])
        ledger.resolve(survived=False)
        assert ledger.acked == [[0, 1]]
        assert ledger.indeterminate is None


class TestHarnessWorld:
    def test_seed_store_and_deterministic_edges(self, tmp_path):
        harness = ChaosHarness(str(tmp_path), quick=True, num_seed_edges=12)
        first = [harness.next_edge() for _ in range(10)]
        assert all(len(e) >= 2 for e in first)
        assert all(
            0 <= v < harness.num_vertices for edge in first for v in edge
        )
        other = ChaosHarness(str(tmp_path / "other"), quick=True, num_seed_edges=12)
        assert [other.next_edge() for _ in range(10)] == first
        assert harness.expected_edges() == harness.seed_edges

    def test_oracle_json_matches_wire_serialisation(self, tmp_path):
        harness = ChaosHarness(str(tmp_path), quick=True, num_seed_edges=12)
        h = harness.oracle_hypergraph()
        text = oracle_values_json(h, 1, "connected_components")
        values = json.loads(text)
        assert values  # one value per non-empty hyperedge
        assert all(isinstance(k, str) for k in values)
        assert text == json.dumps(values, sort_keys=True)
