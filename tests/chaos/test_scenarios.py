"""Chaos scenarios end-to-end (quick mode) and the axis artefacts."""

import json

import pytest

from repro.chaos.scenarios import (
    SCENARIOS,
    ScenarioResult,
    run_scenarios,
    write_axes,
)


class TestRegistry:
    def test_the_advertised_scenarios_exist(self):
        assert set(SCENARIOS) == {
            "kill_writer_mid_compaction",
            "partition_replica",
            "wal_enospc",
            "restart_everything",
        }

    def test_unknown_scenario_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenarios(["typo"], quick=True)


class TestAxisArtifacts:
    def _result(self, name, ok=True):
        result = ScenarioResult(name=name)
        if not ok:
            result.failures.append("durability: pretend loss")
        result.correctness = {"divergences": 0, "pass": True}
        result.durability = {"acked_lost": 0 if ok else 1, "pass": ok}
        result.freshness = {"time_to_ready_s": 1.0, "pass": True}
        return result

    def test_artifacts_merge_across_runs(self, tmp_path):
        write_axes([self._result("one")], str(tmp_path))
        write_axes([self._result("two")], str(tmp_path))
        data = json.loads((tmp_path / "AXES_durability.json").read_text())
        assert set(data["scenarios"]) == {"one", "two"}
        assert data["axis"] == "durability"
        assert data["pass"] is True

    def test_rerunning_a_scenario_replaces_its_entry(self, tmp_path):
        write_axes([self._result("one", ok=False)], str(tmp_path))
        data = json.loads((tmp_path / "AXES_durability.json").read_text())
        assert data["pass"] is False
        write_axes([self._result("one", ok=True)], str(tmp_path))
        data = json.loads((tmp_path / "AXES_durability.json").read_text())
        assert data["pass"] is True

    def test_correctness_entries_carry_their_failures(self, tmp_path):
        result = self._result("one")
        result.failures.append("observability[x]: gauge never rose")
        result.correctness = {"divergences": 0, "pass": False}
        write_axes([result], str(tmp_path))
        data = json.loads((tmp_path / "AXES_correctness.json").read_text())
        entry = data["scenarios"]["one"]
        assert entry["failures"] == ["observability[x]: gauge never rose"]
        assert data["pass"] is False


class TestScenariosEndToEnd:
    """Real subprocess scenarios, quick mode — the CI tier-2 setting.

    Only the two fastest scenarios run here (a couple of seconds each);
    the full suite is exercised by the dedicated CI chaos job via
    ``repro chaos --quick``.
    """

    def test_wal_enospc_quick(self, tmp_path):
        (result,) = run_scenarios(
            ["wal_enospc"], quick=True, results_dir=str(tmp_path),
            emit=lambda payload: None,
        )
        assert result.failures == []
        assert result.durability["typed_refusals"] >= 1
        assert result.durability["acked_lost"] == 0
        for axis in ("correctness", "durability", "freshness"):
            data = json.loads((tmp_path / f"AXES_{axis}.json").read_text())
            assert data["scenarios"]["wal_enospc"]["pass"] is True

    def test_kill_writer_mid_compaction_quick(self, tmp_path):
        (result,) = run_scenarios(
            ["kill_writer_mid_compaction"], quick=True,
            results_dir=str(tmp_path), emit=lambda payload: None,
        )
        assert result.failures == []
        assert result.correctness["divergences"] == 0
        assert result.durability["acked_lost"] == 0
