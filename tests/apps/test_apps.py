"""Tests for the four application workflows (Section V and Table II of the paper).

Each test checks the *qualitative finding* the paper reports, on the
corresponding surrogate dataset.
"""

import pytest

from repro.apps.actors import find_collaborations
from repro.apps.authors import coauthorship_connectivity
from repro.apps.diseases import rank_diseases
from repro.apps.genes import identify_important_genes
from repro.generators.datasets import (
    IMDB_GROUPS,
    IMPORTANT_GENES,
    TOP_DISEASES,
    condmat_surrogate,
    disgenet_surrogate,
    imdb_surrogate,
    virology_surrogate,
)


@pytest.fixture(scope="module")
def small_virology():
    return virology_surrogate(num_genes=250, seed=0)


@pytest.fixture(scope="module")
def small_condmat():
    return condmat_surrogate(num_papers=400, seed=0)


@pytest.fixture(scope="module")
def small_imdb():
    return imdb_surrogate(num_background_actors=80, seed=0)


@pytest.fixture(scope="module")
def small_disgenet():
    return disgenet_surrogate(num_genes=400, num_core_genes=120, seed=0)


class TestGeneImportance:
    def test_important_genes_identified_at_s5(self, small_virology):
        result = identify_important_genes(small_virology, s_values=(1, 3, 5))
        assert set(result.top_gene_names(5, 6)) == set(IMPORTANT_GENES)

    def test_ifit1_usp18_top_two(self, small_virology):
        result = identify_important_genes(small_virology, s_values=(5,))
        assert set(result.top_gene_names(5, 2)) == {"IFIT1", "USP18"}

    def test_line_graph_shrinks_with_s(self, small_virology):
        result = identify_important_genes(small_virology, s_values=(1, 3, 5))
        sizes = result.line_graph_sizes
        assert sizes[1] > sizes[3] > sizes[5] > 0

    def test_centrality_min_s_skips_hairball(self, small_virology):
        result = identify_important_genes(
            small_virology, s_values=(1, 5), centrality_min_s=2
        )
        assert result.top_genes[1] == []
        assert result.top_genes[5]

    def test_components_contain_hub_genes(self, small_virology):
        result = identify_important_genes(small_virology, s_values=(5,))
        members = {g for comp in result.components[5] for g in comp}
        assert set(IMPORTANT_GENES) <= members


class TestCoauthorship:
    def test_connectivity_dips_then_rises(self, small_condmat):
        result = coauthorship_connectivity(small_condmat, s_values=range(1, 17))
        # Decreasing from s = 4 to s = 12 (the paper reports 3..12).
        for s in range(5, 13):
            assert result.connectivity[s] <= result.connectivity[s - 1] + 1e-9
        # Sharp rise at s = 13 (the prolific collective becomes the largest component).
        assert result.rises_at() == 13
        assert result.connectivity[13] > 5 * result.connectivity[12]

    def test_nontrivial_up_to_s16(self, small_condmat):
        result = coauthorship_connectivity(small_condmat, s_values=range(1, 17))
        assert result.max_nontrivial_s() == 16


class TestActorCollaborations:
    def test_recovers_planted_groups(self, small_imdb):
        result = find_collaborations(small_imdb, s=100)
        found = {frozenset(group) for group in result.components}
        expected = {frozenset(group) for group in IMDB_GROUPS}
        assert expected <= found

    def test_adoor_bhasi_is_most_central(self, small_imdb):
        result = find_collaborations(small_imdb, s=100)
        assert result.most_central_actor() == "Adoor Bhasi"
        # The star partners have zero betweenness, so only Adoor (and possibly
        # the centres of other groups) appears among the non-zero scores.
        assert "Bahadur" not in result.central_actors

    def test_timing_recorded(self, small_imdb):
        result = find_collaborations(small_imdb, s=100)
        assert result.times.get("s_line_graph") > 0.0
        assert result.line_graph_edges >= 7  # 4 star edges + 3 pair edges


class TestDiseaseRanking:
    def test_top5_stable_across_s(self, small_disgenet):
        result = rank_diseases(small_disgenet, s_values=(1, 10, 100), top_k=5)
        top_at_1 = [name for name, _, _ in result.top_ranked[1]]
        assert set(top_at_1) == set(TOP_DISEASES)
        assert result.overlap_of_top_k(1, 10, 5) >= 0.8
        assert result.overlap_of_top_k(1, 100, 5) >= 0.8

    def test_edge_counts_shrink_dramatically(self, small_disgenet):
        result = rank_diseases(small_disgenet, s_values=(1, 10, 100))
        assert result.edge_counts[1] > result.edge_counts[10] > result.edge_counts[100] > 0
        assert result.edge_counts[1] / result.edge_counts[100] > 20

    def test_percentiles_high_for_top_diseases(self, small_disgenet):
        result = rank_diseases(small_disgenet, s_values=(1,), top_k=5)
        for _, _, percentile in result.top_ranked[1]:
            assert percentile >= 95.0
