"""Shared fixtures for the test suite.

``paper_example`` is the running example of the paper (Figure 1): vertices
``a..f`` and hyperedges ``1: {a,b,c}``, ``2: {b,c,d}``, ``3: {a,b,c,d,e}``,
``4: {e,f}``.  Its s-line graphs for s = 1..4 are given in Figure 2 and used
as ground truth throughout the tests.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# The runtime lock-order detector must patch the threading factories
# before anything under repro creates a lock, so this runs ahead of the
# repro imports below.  Opt-in via REPRO_LOCKCHECK=1 (tier-2 CI jobs);
# zero cost otherwise — the module is not even imported.
_TOOLS_DIR = str(Path(__file__).resolve().parent.parent / "tools")
if os.environ.get("REPRO_LOCKCHECK") == "1":
    if _TOOLS_DIR not in sys.path:
        sys.path.insert(0, _TOOLS_DIR)
    from repro_lint import lockcheck as _lockcheck

    _lockcheck.install()
else:
    _lockcheck = None

import numpy as np
import pytest

from repro.generators.random import random_hypergraph, zipf_edge_sizes
from repro.generators.community import planted_community_hypergraph
from repro.hypergraph.builders import (
    hypergraph_from_edge_dict,
    hypergraph_from_edge_lists,
)


#: The edge sets of the hyperedge s-line graphs of the paper example
#: (0-indexed hyperedge IDs), read off the paper's Figure 2.
PAPER_EXAMPLE_SLINE_EDGES = {
    1: {(0, 1), (0, 2), (1, 2), (2, 3)},
    2: {(0, 1), (0, 2), (1, 2)},
    3: {(0, 2), (1, 2)},
    4: set(),
}

#: Exact pairwise overlap counts of the paper example (upper triangle).
PAPER_EXAMPLE_OVERLAPS = {
    (0, 1): 2,  # {b, c}
    (0, 2): 3,  # {a, b, c}
    (0, 3): 0,
    (1, 2): 3,  # {b, c, d}
    (1, 3): 0,
    (2, 3): 1,  # {e}
}


@pytest.fixture
def paper_example():
    """The paper's Figure 1 example hypergraph, with labels."""
    return hypergraph_from_edge_dict(
        {
            1: ["a", "b", "c"],
            2: ["b", "c", "d"],
            3: ["a", "b", "c", "d", "e"],
            4: ["e", "f"],
        }
    )


@pytest.fixture
def paper_example_unlabelled():
    """The same example built from integer edge lists (no labels)."""
    return hypergraph_from_edge_lists(
        [[0, 1, 2], [1, 2, 3], [0, 1, 2, 3, 4], [4, 5]], num_vertices=6
    )


@pytest.fixture
def small_random_hypergraph():
    """A small random hypergraph with mixed edge sizes (deterministic)."""
    rng = np.random.default_rng(42)
    sizes = zipf_edge_sizes(60, mean_size=4.0, max_size=12, rng=rng)
    return random_hypergraph(40, 60, edge_sizes=sizes, seed=rng)


@pytest.fixture
def community_hypergraph():
    """A planted-community hypergraph with meaningful overlaps (deterministic)."""
    return planted_community_hypergraph(
        num_vertices=80,
        num_edges=120,
        num_communities=6,
        mean_edge_size=6.0,
        max_edge_size=20,
        seed=7,
    )


@pytest.fixture
def empty_hypergraph():
    """A hypergraph with vertices but a single empty hyperedge."""
    return hypergraph_from_edge_lists([[]], num_vertices=3)


def pytest_sessionfinish(session, exitstatus):
    """Under REPRO_LOCKCHECK=1, fail the run on an observed lock-order
    cycle or over-threshold hold — the graph covers every lock the whole
    session actually acquired, across all threads."""
    if _lockcheck is None or not _lockcheck.is_active():
        return
    print(f"\n{_lockcheck.report()}")
    if _lockcheck.find_cycles() or _lockcheck.hold_violations():
        session.exitstatus = 1


def brute_force_s_line_edges(h, s):
    """Oracle: compute the s-line-graph edge set by direct set intersections."""
    members = [set(map(int, h.edge_members(i))) for i in range(h.num_edges)]
    out = {}
    for i in range(h.num_edges):
        for j in range(i + 1, h.num_edges):
            overlap = len(members[i] & members[j])
            if overlap >= s:
                out[(i, j)] = overlap
    return out
