"""Unit tests for per-worker storage policies and workload statistics."""
import pytest

from repro.parallel.tls import DynamicCounter, PreallocatedCounter, WorkerLocalStorage
from repro.parallel.workload import WorkerCounters, WorkloadStats


class TestWorkerLocalStorage:
    def test_per_worker_values(self):
        storage = WorkerLocalStorage(factory=list)
        a = storage.get(0)
        b = storage.get(1)
        a.append("x")
        assert storage.get(0) is a
        assert storage.get(1) is b and b == []
        assert len(storage) == 2
        assert sorted(len(v) for v in storage.values()) == [0, 1]


class TestCounterPolicies:
    def test_dynamic_counter_gives_fresh_dicts(self):
        policy = DynamicCounter()
        first = policy.fresh()
        first["a"] = 1
        second = policy.fresh()
        assert second == {}
        policy.reset(first)  # no-op

    def test_preallocated_counter_reset_clears_only_touched(self):
        counter = PreallocatedCounter(num_edges=10)
        counter.increment(3)
        counter.increment(3)
        counter.increment(7)
        assert dict(counter.items()) == {3: 2, 7: 1}
        assert len(counter) == 2
        counter.reset()
        assert len(counter) == 0
        assert dict(counter.items()) == {}
        counter.increment(1)
        assert dict(counter.items()) == {1: 1}

    def test_preallocated_fresh_returns_self(self):
        counter = PreallocatedCounter(num_edges=4)
        assert counter.fresh() is counter


class TestWorkloadStats:
    def make_stats(self):
        return WorkloadStats.from_counters(
            [
                WorkerCounters(worker_id=1, wedges_visited=30, set_intersections=2),
                WorkerCounters(worker_id=0, wedges_visited=10, set_intersections=1),
            ]
        )

    def test_sorted_by_worker_id(self):
        stats = self.make_stats()
        assert [w.worker_id for w in stats.workers] == [0, 1]
        assert stats.visits_per_worker().tolist() == [10, 30]

    def test_totals(self):
        stats = self.make_stats()
        assert stats.total_wedges() == 40
        assert stats.total_set_intersections() == 3
        assert stats.num_workers == 2

    def test_imbalance(self):
        stats = self.make_stats()
        assert stats.imbalance() == pytest.approx(30 / 20)
        balanced = WorkloadStats.from_counters(
            [WorkerCounters(0, wedges_visited=5), WorkerCounters(1, wedges_visited=5)]
        )
        assert balanced.imbalance() == pytest.approx(1.0)

    def test_empty_stats(self):
        stats = WorkloadStats()
        assert stats.total_wedges() == 0
        assert stats.imbalance() == 1.0

    def test_merge_counters(self):
        a = WorkerCounters(0, edges_processed=1, wedges_visited=2)
        b = WorkerCounters(0, edges_processed=3, wedges_visited=4, line_edges_emitted=5)
        a.merge(b)
        assert a.edges_processed == 4
        assert a.wedges_visited == 6
        assert a.line_edges_emitted == 5

    def test_as_dict(self):
        stats = self.make_stats()
        d = stats.as_dict()
        assert d["num_workers"] == 2
        assert d["visits_per_worker"] == [10, 30]
