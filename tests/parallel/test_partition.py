"""Unit tests for blocked/cyclic partitioning."""

import numpy as np
import pytest

from repro.parallel.partition import (
    blocked_partitions,
    cyclic_partitions,
    partition_items,
)
from repro.utils.validation import ValidationError


class TestBlocked:
    def test_covers_range_contiguously(self):
        parts = blocked_partitions(10, 3)
        assert len(parts) == 3
        assert np.concatenate(parts).tolist() == list(range(10))
        # Each partition is contiguous.
        for p in parts:
            if p.size > 1:
                assert np.all(np.diff(p) == 1)

    def test_more_parts_than_items(self):
        parts = blocked_partitions(2, 5)
        assert len(parts) == 5
        assert sum(p.size for p in parts) == 2

    def test_zero_items(self):
        parts = blocked_partitions(0, 4)
        assert len(parts) == 4
        assert all(p.size == 0 for p in parts)

    def test_grainsize_splits_blocks(self):
        parts = blocked_partitions(100, 2, grainsize=10)
        assert len(parts) == 10
        assert all(p.size <= 10 for p in parts)
        assert np.concatenate(parts).tolist() == list(range(100))

    def test_balanced_sizes(self):
        parts = blocked_partitions(11, 4)
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            blocked_partitions(10, 0)
        with pytest.raises(ValidationError):
            blocked_partitions(-1, 2)
        with pytest.raises(ValidationError):
            blocked_partitions(10, 2, grainsize=0)


class TestCyclic:
    def test_strided_assignment(self):
        parts = cyclic_partitions(10, 3)
        assert parts[0].tolist() == [0, 3, 6, 9]
        assert parts[1].tolist() == [1, 4, 7]
        assert parts[2].tolist() == [2, 5, 8]

    def test_covers_all_items(self):
        parts = cyclic_partitions(17, 4)
        assert sorted(np.concatenate(parts).tolist()) == list(range(17))

    def test_zero_items(self):
        parts = cyclic_partitions(0, 3)
        assert all(p.size == 0 for p in parts)


class TestPartitionItems:
    def test_partitions_arbitrary_item_array(self):
        items = np.array([10, 20, 30, 40, 50])
        blocked = partition_items(items, 2, strategy="blocked")
        cyclic = partition_items(items, 2, strategy="cyclic")
        assert np.concatenate(blocked).tolist() == [10, 20, 30, 40, 50]
        assert cyclic[0].tolist() == [10, 30, 50]
        assert cyclic[1].tolist() == [20, 40]

    def test_unknown_strategy(self):
        with pytest.raises(ValidationError):
            partition_items(np.arange(3), 2, strategy="diagonal")
