"""Unit tests for the partitioned executor (serial / thread / process backends)."""

import numpy as np
import pytest

from repro.parallel.executor import ParallelConfig, available_backends, run_partitioned
from repro.utils.validation import ValidationError


def summing_kernel(items, worker_id):
    """Module-level kernel (picklable for the process backend)."""
    return int(np.sum(items)), worker_id


class TestParallelConfig:
    def test_defaults(self):
        config = ParallelConfig()
        assert config.num_workers == 1
        assert config.strategy == "blocked"
        assert config.backend == "serial"

    def test_validation(self):
        with pytest.raises(ValidationError):
            ParallelConfig(num_workers=0)
        with pytest.raises(ValidationError):
            ParallelConfig(strategy="hexagonal")
        with pytest.raises(ValidationError):
            ParallelConfig(backend="gpu")
        with pytest.raises(ValidationError):
            ParallelConfig(grainsize=-1)

    def test_partitions_helper(self):
        config = ParallelConfig(num_workers=3, strategy="cyclic")
        parts = config.partitions(np.arange(7))
        assert len(parts) == 3
        assert parts[0].tolist() == [0, 3, 6]

    def test_available_backends(self):
        assert set(available_backends()) == {"serial", "thread", "process"}


class TestRunPartitioned:
    def test_serial_results_in_partition_order(self):
        config = ParallelConfig(num_workers=4, strategy="blocked")
        results = run_partitioned(summing_kernel, np.arange(20), config)
        assert [worker for _, worker in results] == [0, 1, 2, 3]
        assert sum(total for total, _ in results) == sum(range(20))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("strategy", ["blocked", "cyclic"])
    def test_parallel_backends_match_serial(self, backend, strategy):
        serial = run_partitioned(
            summing_kernel,
            np.arange(50),
            ParallelConfig(num_workers=4, strategy=strategy, backend="serial"),
        )
        parallel = run_partitioned(
            summing_kernel,
            np.arange(50),
            ParallelConfig(num_workers=4, strategy=strategy, backend=backend),
        )
        assert serial == parallel

    def test_single_worker_short_circuits_to_serial(self):
        results = run_partitioned(
            summing_kernel, np.arange(5), ParallelConfig(num_workers=1, backend="thread")
        )
        assert len(results) == 1

    def test_empty_item_array(self):
        results = run_partitioned(
            summing_kernel, np.empty(0, dtype=np.int64), ParallelConfig(num_workers=3)
        )
        assert [total for total, _ in results] == [0, 0, 0]
