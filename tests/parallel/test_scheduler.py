"""Unit tests for the chunked dynamic-scheduling model (grain-size control)."""

import numpy as np
import pytest

from repro.parallel.scheduler import (
    dynamic_chunk_schedule,
    grainsize_sweep,
    wedge_costs,
)
from repro.utils.validation import ValidationError


class TestDynamicChunkSchedule:
    def test_all_work_assigned(self):
        costs = np.arange(1, 21, dtype=float)
        result = dynamic_chunk_schedule(costs, num_workers=4, grainsize=3)
        assert result.total_work == pytest.approx(costs.sum())
        assert result.num_chunks == 7
        assert len(result.chunk_assignment) == 7
        assert result.num_workers == 4

    def test_single_worker_makespan_is_total(self):
        costs = np.array([5.0, 1.0, 3.0])
        result = dynamic_chunk_schedule(costs, num_workers=1, grainsize=1)
        assert result.makespan == pytest.approx(9.0)
        assert result.imbalance() == pytest.approx(1.0)

    def test_fine_grain_balances_uniform_work(self):
        costs = np.ones(100)
        result = dynamic_chunk_schedule(costs, num_workers=4, grainsize=1)
        assert result.imbalance() == pytest.approx(1.0)
        assert result.efficiency() == pytest.approx(1.0)

    def test_coarse_grain_creates_stragglers(self):
        # One heavy item inside a huge chunk dominates the makespan.
        costs = np.ones(64)
        costs[0] = 100.0
        fine = dynamic_chunk_schedule(costs, num_workers=4, grainsize=1)
        coarse = dynamic_chunk_schedule(costs, num_workers=4, grainsize=32)
        assert coarse.makespan >= fine.makespan

    def test_overhead_penalises_tiny_chunks(self):
        costs = np.ones(256)
        tiny = dynamic_chunk_schedule(costs, 4, grainsize=1, per_chunk_overhead=1.0)
        medium = dynamic_chunk_schedule(costs, 4, grainsize=32, per_chunk_overhead=1.0)
        assert tiny.makespan > medium.makespan

    def test_empty_costs(self):
        result = dynamic_chunk_schedule(np.empty(0), num_workers=3, grainsize=4)
        assert result.makespan == 0.0
        assert result.num_chunks == 0
        assert result.imbalance() == 1.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            dynamic_chunk_schedule(np.array([-1.0]), 2, 1)
        with pytest.raises(ValidationError):
            dynamic_chunk_schedule(np.ones((2, 2)), 2, 1)
        with pytest.raises(ValidationError):
            dynamic_chunk_schedule(np.ones(4), 0, 1)
        with pytest.raises(ValidationError):
            dynamic_chunk_schedule(np.ones(4), 2, 0)


class TestGrainsizeSweep:
    def test_sweep_returns_all_grainsizes(self):
        costs = np.random.default_rng(0).random(200)
        sweep = grainsize_sweep(costs, 8, [1, 16, 64, 200])
        assert set(sweep) == {1, 16, 64, 200}
        # All grain sizes schedule the same total work.
        totals = {round(r.total_work, 9) for r in sweep.values()}
        assert len(totals) == 1
        # The whole range in one chunk cannot beat fine-grained scheduling.
        assert sweep[200].makespan >= sweep[1].makespan


class TestWedgeCosts:
    def test_matches_workload_counters(self, paper_example):
        from repro.core.algorithms.hashmap import s_line_graph_hashmap

        costs = wedge_costs(paper_example, s=1)
        result = s_line_graph_hashmap(paper_example, 1)
        assert costs.sum() == result.workload.total_wedges()

    def test_pruned_edges_cost_zero(self, paper_example):
        costs = wedge_costs(paper_example, s=3)
        # Edge 3 has size 2 < 3, so it is pruned.
        assert costs[3] == 0.0
        assert costs[2] > 0.0
