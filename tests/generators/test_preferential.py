"""Unit tests for the preferential-attachment hypergraph generator."""
import pytest

from repro.generators.preferential import preferential_attachment_hypergraph
from repro.hypergraph.degree import vertex_degree_distribution
from repro.utils.validation import ValidationError


class TestPreferentialAttachment:
    def test_shape_and_determinism(self):
        a = preferential_attachment_hypergraph(200, seed=3)
        b = preferential_attachment_hypergraph(200, seed=3)
        assert a == b
        assert a.num_edges == 200
        assert a.num_vertices >= 5

    def test_sizes_bounded(self):
        h = preferential_attachment_hypergraph(150, mean_edge_size=5, max_edge_size=12, seed=0)
        assert h.edge_sizes().max() <= 12
        assert h.edge_sizes().min() >= 1

    def test_produces_heavy_tailed_degrees(self):
        h = preferential_attachment_hypergraph(
            600, mean_edge_size=4, newcomer_probability=0.15, seed=1
        )
        dist = vertex_degree_distribution(h)
        assert dist.is_skewed()
        assert dist.maximum > 5 * dist.mean

    def test_newcomer_probability_one_gives_disjoint_edges(self):
        h = preferential_attachment_hypergraph(50, newcomer_probability=1.0, seed=0)
        # Every membership creates a new vertex, so all vertex degrees are 1.
        assert h.vertex_degrees().max() == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            preferential_attachment_hypergraph(0)
        with pytest.raises(ValidationError):
            preferential_attachment_hypergraph(10, newcomer_probability=1.5)
        with pytest.raises(ValidationError):
            preferential_attachment_hypergraph(10, mean_edge_size=0.5)
        with pytest.raises(ValidationError):
            preferential_attachment_hypergraph(10, smoothing=0.0)
