"""Unit tests for the generic hypergraph generators."""

import numpy as np
import pytest

from repro.generators.bipartite import configuration_bipartite_hypergraph
from repro.generators.community import (
    add_overlap_core,
    planted_community_hypergraph,
    planted_overlap_core,
)
from repro.generators.random import (
    chung_lu_hypergraph,
    power_law_weights,
    random_hypergraph,
    zipf_edge_sizes,
)
from repro.utils.validation import ValidationError


class TestPowerLawWeights:
    def test_bounds_and_size(self):
        w = power_law_weights(1000, exponent=2.5, min_weight=2.0, max_weight=50.0, rng=0)
        assert w.size == 1000
        assert w.min() >= 2.0
        assert w.max() <= 50.0

    def test_skew_increases_with_smaller_exponent(self):
        heavy = power_law_weights(5000, exponent=1.5, max_weight=1e6, rng=1)
        light = power_law_weights(5000, exponent=3.5, max_weight=1e6, rng=1)
        assert heavy.max() / heavy.mean() > light.max() / light.mean()

    def test_invalid_exponent(self):
        with pytest.raises(ValidationError):
            power_law_weights(10, exponent=1.0)

    def test_deterministic_with_seed(self):
        assert np.array_equal(power_law_weights(50, rng=7), power_law_weights(50, rng=7))


class TestZipfEdgeSizes:
    def test_range_and_mean(self):
        sizes = zipf_edge_sizes(2000, mean_size=6.0, max_size=40, rng=0)
        assert sizes.min() >= 1
        assert sizes.max() <= 40
        assert 3.0 < sizes.mean() < 9.0

    def test_skewed_distribution(self):
        sizes = zipf_edge_sizes(2000, mean_size=5.0, max_size=100, exponent=1.8, rng=0)
        assert np.median(sizes) < sizes.mean()


class TestRandomHypergraph:
    def test_shape_and_sizes(self):
        h = random_hypergraph(20, 15, edge_sizes=4, seed=0)
        assert h.num_vertices == 20
        assert h.num_edges == 15
        assert all(h.edge_size(i) == 4 for i in range(15))

    def test_per_edge_sizes(self):
        h = random_hypergraph(10, 3, edge_sizes=[1, 2, 3], seed=0)
        assert h.edge_sizes().tolist() == [1, 2, 3]

    def test_sizes_capped_at_num_vertices(self):
        h = random_hypergraph(4, 2, edge_sizes=10, seed=0)
        assert h.edge_sizes().max() == 4

    def test_size_length_mismatch(self):
        with pytest.raises(ValidationError):
            random_hypergraph(10, 3, edge_sizes=[1, 2], seed=0)

    def test_deterministic(self):
        a = random_hypergraph(30, 20, edge_sizes=3, seed=5)
        b = random_hypergraph(30, 20, edge_sizes=3, seed=5)
        assert a == b


class TestChungLu:
    def test_heavy_vertices_get_higher_degrees(self):
        weights = np.ones(200)
        weights[:5] = 200.0
        sizes = np.full(300, 5)
        h = chung_lu_hypergraph(weights, sizes, seed=0)
        degrees = h.vertex_degrees()
        assert degrees[:5].mean() > 5 * degrees[5:].mean()

    def test_validation(self):
        with pytest.raises(ValidationError):
            chung_lu_hypergraph([], [3])
        with pytest.raises(ValidationError):
            chung_lu_hypergraph([1.0, -1.0], [2])
        with pytest.raises(ValidationError):
            chung_lu_hypergraph([1.0, 1.0], [0])


class TestConfigurationBipartite:
    def test_shape(self):
        h = configuration_bipartite_hypergraph([2] * 30, [3] * 20, seed=0)
        assert h.num_vertices == 30
        assert h.num_edges == 20

    def test_approximates_requested_sizes(self):
        h = configuration_bipartite_hypergraph([3] * 100, [6] * 50, seed=1)
        assert abs(h.edge_sizes().mean() - 6) < 1.5

    def test_validation(self):
        with pytest.raises(ValidationError):
            configuration_bipartite_hypergraph([], [1])
        with pytest.raises(ValidationError):
            configuration_bipartite_hypergraph([-1], [1])


class TestCommunityGenerators:
    def test_planted_community_shape(self):
        h = planted_community_hypergraph(100, 60, 5, seed=0)
        assert h.num_vertices == 100
        assert h.num_edges == 60

    def test_within_probability_validation(self):
        with pytest.raises(ValidationError):
            planted_community_hypergraph(10, 5, 2, within_probability=1.5)

    def test_planted_overlap_core_guarantees_overlap(self):
        lists = planted_overlap_core(6, core_size=5, num_vertices=50, seed=0)
        assert len(lists) == 6
        common = set(lists[0])
        for members in lists[1:]:
            common &= set(members)
        assert len(common) >= 5

    def test_core_size_validation(self):
        with pytest.raises(ValidationError):
            planted_overlap_core(3, core_size=10, num_vertices=5)

    def test_explicit_core_vertices(self):
        lists = planted_overlap_core(
            3, core_size=3, num_vertices=20, core_vertices=[1, 2, 3], seed=0
        )
        for members in lists:
            assert {1, 2, 3} <= set(members)

    def test_add_overlap_core_appends_edges(self, community_hypergraph):
        enriched = add_overlap_core(community_hypergraph, 5, core_size=6, seed=0)
        assert enriched.num_edges == community_hypergraph.num_edges + 5
        assert enriched.num_vertices == community_hypergraph.num_vertices
        # The appended edges pairwise overlap in at least 6 vertices.
        new_ids = range(community_hypergraph.num_edges, enriched.num_edges)
        for i in new_ids:
            for j in new_ids:
                if i < j:
                    assert enriched.inc(i, j) >= 6
