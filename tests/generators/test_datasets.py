"""Unit tests for the named dataset surrogates."""
import pytest

from repro.core.dispatch import s_line_graph
from repro.generators.datasets import (
    DATASET_SPECS,
    IMDB_GROUPS,
    IMPORTANT_GENES,
    TOP_DISEASES,
    available_datasets,
    compboard_surrogate,
    condmat_surrogate,
    dataset_stats_table,
    disgenet_surrogate,
    imdb_surrogate,
    lesmis_surrogate,
    load_dataset,
    virology_surrogate,
)
from repro.hypergraph.properties import compute_stats
from repro.utils.validation import ValidationError


class TestTableIVSurrogates:
    def test_all_eight_datasets_present(self):
        assert len(available_datasets()) == 8
        assert set(available_datasets()) == set(DATASET_SPECS)

    @pytest.mark.parametrize("name", sorted(DATASET_SPECS))
    def test_load_small_scale(self, name):
        h = load_dataset(name, scale=0.1, seed=0)
        stats = compute_stats(h)
        assert stats.num_edges > 0 and stats.num_vertices > 0
        # Skewed hyperedge size distribution, as the paper notes for all inputs.
        assert stats.max_edge_size > stats.avg_edge_size

    def test_deterministic(self):
        assert load_dataset("email-euall", scale=0.2, seed=3) == load_dataset(
            "email-euall", scale=0.2, seed=3
        )

    def test_different_seeds_differ(self):
        a = load_dataset("email-euall", scale=0.2, seed=1)
        b = load_dataset("email-euall", scale=0.2, seed=2)
        assert a != b

    def test_planted_core_survives_s8(self):
        h = load_dataset("livejournal", scale=0.15, seed=0)
        lg = s_line_graph(h, 8, algorithm="vectorized")
        assert lg.num_edges > 0

    def test_unknown_dataset(self):
        with pytest.raises(ValidationError):
            load_dataset("imaginary-graph")

    def test_invalid_scale(self):
        with pytest.raises(ValidationError):
            load_dataset("web", scale=0.0)

    def test_stats_table_contains_all_rows(self):
        table = dataset_stats_table(["email-euall", "friendster"], scale=0.1)
        assert "email-euall" in table and "friendster" in table


class TestDisgenetSurrogate:
    def test_top_diseases_are_first_vertices(self):
        h = disgenet_surrogate(num_genes=300, num_core_genes=60, seed=0)
        assert h.vertex_names[: len(TOP_DISEASES)] == TOP_DISEASES

    def test_core_diseases_share_many_genes(self):
        h = disgenet_surrogate(num_genes=300, num_core_genes=60, seed=0)
        dual = h.dual()
        # The top two diseases co-occur in at least the number of core genes.
        assert dual.inc(0, 1) >= 60


class TestCondmatSurrogate:
    def test_contains_prolific_collective(self):
        h = condmat_surrogate(num_papers=300, seed=0)
        sizes = h.edge_sizes()
        assert (sizes >= 20).sum() >= 16

    def test_band_structure_spans_thresholds(self):
        h = condmat_surrogate(num_papers=300, seed=0)
        lg12 = s_line_graph(h, 12, algorithm="vectorized")
        lg13 = s_line_graph(h, 13, algorithm="vectorized")
        assert lg12.num_edges > lg13.num_edges > 0


class TestVirologySurrogate:
    def test_hub_genes_present_and_large(self):
        h = virology_surrogate(num_genes=200, seed=0)
        names = h.edge_names
        for gene in IMPORTANT_GENES:
            idx = names.index(gene)
            assert h.edge_size(idx) >= 100

    def test_ifit1_usp18_share_over_100_conditions(self):
        h = virology_surrogate(num_genes=200, seed=0)
        names = h.edge_names
        assert h.inc(names.index("IFIT1"), names.index("USP18")) > 100

    def test_number_of_conditions_matches_paper(self):
        h = virology_surrogate(seed=0)
        assert h.num_vertices == 201


class TestImdbSurrogate:
    def test_planted_star_structure(self):
        h = imdb_surrogate(num_background_actors=50, seed=0)
        names = h.edge_names
        star = IMDB_GROUPS[0]
        adoor = names.index(star[0])
        partners = [names.index(p) for p in star[1:]]
        for p in partners:
            assert h.inc(adoor, p) >= 100
        for a in partners:
            for b in partners:
                if a < b:
                    assert h.inc(a, b) < 100

    def test_planted_pairs(self):
        h = imdb_surrogate(num_background_actors=50, seed=0)
        names = h.edge_names
        for pair in IMDB_GROUPS[1:]:
            a, b = names.index(pair[0]), names.index(pair[1])
            assert h.inc(a, b) >= 100


class TestSmallFigure4Surrogates:
    @pytest.mark.parametrize("factory", [compboard_surrogate, lesmis_surrogate])
    def test_basic_shape(self, factory):
        h = factory(seed=0)
        assert h.num_edges > 0 and h.num_vertices > 0
        assert compute_stats(h).max_edge_size >= 5
