"""Process runtime gauges: uptime, RSS, open fds, GC activity."""

import sys
import time

import pytest

from repro.obs import MetricsRegistry, register_process_metrics, render_prometheus
from repro.obs.process import open_fds, resident_memory_bytes


class TestCollectors:
    @pytest.mark.skipif(sys.platform != "linux", reason="/proc is Linux-only")
    def test_rss_and_fds_read_proc(self):
        assert resident_memory_bytes() > 1024 * 1024  # a running CPython
        assert open_fds() >= 3  # stdin/stdout/stderr at minimum

    def test_collectors_never_raise(self):
        # Even where /proc is missing these must answer (-1), not throw.
        assert isinstance(resident_memory_bytes(), float)
        assert isinstance(open_fds(), float)


class TestRegistration:
    def test_gauges_land_on_the_given_registry(self):
        registry = MetricsRegistry()
        register_process_metrics(registry)
        text = render_prometheus(registry)
        assert "process_uptime_seconds" in text
        assert "process_resident_memory_bytes" in text
        assert "process_open_fds" in text
        assert 'process_gc_collections_total{generation="0"}' in text
        assert 'process_gc_objects_collected_total{generation="2"}' in text

    def test_uptime_grows_between_scrapes(self):
        registry = MetricsRegistry()
        register_process_metrics(registry)
        first = registry.get("process_uptime_seconds").value
        time.sleep(0.02)
        second = registry.get("process_uptime_seconds").value
        assert second > first >= 0.0

    def test_collection_is_lazy_per_scrape(self):
        registry = MetricsRegistry()
        register_process_metrics(registry)
        gauge = registry.get("process_open_fds")
        a = gauge.value
        with open(__file__, "r"):
            b = gauge.value
        if a > 0:  # /proc available: the extra fd must be visible
            assert b == a + 1

    def test_reregistration_is_idempotent(self):
        registry = MetricsRegistry()
        register_process_metrics(registry)
        register_process_metrics(registry)  # must not raise on re-bind
        assert "process_uptime_seconds" in render_prometheus(registry)
