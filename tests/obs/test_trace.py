"""The dependency-free tracer: sampling, context, buffer, rendering."""

import json
import threading
import time

import pytest

from repro.obs import NOOP_SPAN, Span, TraceBuffer, Tracer, render_trace
from repro.obs.trace import _valid_wire_context


class TestDisabledFastPath:
    def test_default_tracer_is_disabled(self):
        tracer = Tracer()
        assert not tracer.enabled
        with tracer.start_request("server.metric") as span:
            assert span is NOOP_SPAN
            assert not span.recording
            assert tracer.current_span() is None
        assert tracer.finished_traces() == []

    def test_noop_span_absorbs_the_span_surface(self):
        NOOP_SPAN.set_attribute("k", "v")
        NOOP_SPAN.set_status("error", "boom")
        assert NOOP_SPAN.trace_id == ""

    def test_child_without_a_recording_parent_is_noop(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.start_span("engine.metric") as span:
            assert span is NOOP_SPAN

    def test_invalid_parameters_are_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError):
            Tracer(slow_ms=-1.0)
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


class TestSampling:
    def test_rate_one_keeps_every_request(self):
        tracer = Tracer(sample_rate=1.0)
        for _ in range(5):
            with tracer.start_request("server.metric"):
                pass
        stats = tracer.stats()
        assert stats["requests"] == 5
        assert stats["sampled"] == 5
        assert stats["kept"] == 5
        assert len(tracer.finished_traces(limit=None)) == 5

    def test_rate_zero_without_slow_keeps_nothing(self):
        tracer = Tracer(sample_rate=1.0)
        tracer.sample_rate = 0.0  # enabled check happens per request
        assert not tracer.enabled
        with tracer.start_request("server.metric"):
            pass
        assert tracer.finished_traces() == []

    def test_slow_threshold_keeps_only_slow_requests(self):
        tracer = Tracer(sample_rate=0.0, slow_ms=5.0)
        assert tracer.enabled
        with tracer.start_request("fast"):
            pass
        with tracer.start_request("slow"):
            time.sleep(0.02)
        traces = tracer.finished_traces()
        assert [t["root"] for t in traces] == ["slow"]
        assert traces[0]["slow"] and not traces[0]["sampled"]
        stats = tracer.stats()
        assert stats["kept_slow"] == 1
        assert stats["discarded"] == 1

    def test_sampled_and_slow_flags_can_combine(self):
        tracer = Tracer(sample_rate=1.0, slow_ms=0.0)
        with tracer.start_request("req"):
            pass
        (trace,) = tracer.finished_traces()
        assert trace["sampled"] and trace["slow"]


class TestSpanTree:
    def test_nesting_records_parentage(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.start_request("server.metric") as root:
            with tracer.start_span("engine.metric", {"s": 2}) as child:
                assert tracer.current_span() is child
                assert child.parent_id == root.span_id
                assert child.trace_id == root.trace_id
            assert tracer.current_span() is root
        (trace,) = tracer.finished_traces()
        by_name = {s["name"]: s for s in trace["spans"]}
        assert by_name["engine.metric"]["parent_id"] == by_name["server.metric"]["span_id"]
        assert by_name["engine.metric"]["attributes"] == {"s": 2}
        assert trace["duration_ms"] >= 0

    def test_exception_marks_the_span_errored(self):
        tracer = Tracer(sample_rate=1.0)
        with pytest.raises(RuntimeError):
            with tracer.start_request("server.metric"):
                raise RuntimeError("boom")
        (trace,) = tracer.finished_traces()
        span = trace["spans"][0]
        assert span["status"] == "error"
        assert "boom" in span["detail"]

    def test_thread_local_context_is_isolated(self):
        tracer = Tracer(sample_rate=1.0)
        seen = []

        def other():
            seen.append(tracer.current_span())

        with tracer.start_request("server.metric"):
            worker = threading.Thread(target=other)
            worker.start()
            worker.join()
        assert seen == [None]

    def test_use_span_attributes_work_to_another_thread(self):
        tracer = Tracer(sample_rate=1.0)

        def worker(span):
            with tracer.use_span(span):
                with tracer.start_span("wal.fsync"):
                    pass

        with tracer.start_request("server.add") as root:
            thread = threading.Thread(target=worker, args=(root,))
            thread.start()
            thread.join()
        (trace,) = tracer.finished_traces()
        names = {s["name"]: s for s in trace["spans"]}
        assert names["wal.fsync"]["parent_id"] == names["server.add"]["span_id"]

    def test_use_span_of_none_is_noop(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.use_span(None) as span:
            assert span is NOOP_SPAN

    def test_record_span_backfills_an_interval(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.start_request("server.add") as root:
            start = time.perf_counter() - 0.010
            span = tracer.record_span(
                "admission.queue_wait", root, start, time.perf_counter()
            )
            assert isinstance(span, Span)
        (trace,) = tracer.finished_traces()
        wait = next(s for s in trace["spans"] if s["name"] == "admission.queue_wait")
        assert wait["duration_ms"] >= 9.0
        assert wait["parent_id"] == root.span_id

    def test_record_span_without_parent_is_dropped(self):
        tracer = Tracer(sample_rate=1.0)
        assert tracer.record_span("x", None, 0.0, 1.0) is None

    def test_span_cap_counts_dropped_spans(self):
        tracer = Tracer(sample_rate=1.0, max_spans_per_trace=3)
        with tracer.start_request("root"):
            for _ in range(5):
                with tracer.start_span("child"):
                    pass
        (trace,) = tracer.finished_traces()
        assert len(trace["spans"]) == 3
        assert trace["spans_dropped"] == 3  # two children + the root itself


class TestWireContext:
    def test_round_trip_preserves_the_trace_id(self):
        client = Tracer(sample_rate=1.0)
        server = Tracer(sample_rate=0.0, slow_ms=None)
        server.sample_rate = 0.0
        server.slow_ms = 1e9  # enabled, but nothing is slow

        with client.start_request("client.metric") as span:
            ctx = client.wire_context()
            assert ctx == {
                "trace_id": span.trace_id,
                "parent_span_id": span.span_id,
                "sampled": True,
            }
            with server.start_request("server.metric", remote=ctx) as remote_root:
                assert remote_root.trace_id == span.trace_id
                assert remote_root.parent_id == span.span_id
        # An adopted context is sampled: the server keeps the trace even
        # though its own coin never flips.
        (trace,) = server.finished_traces()
        assert trace["trace_id"] == span.trace_id

    def test_unsampled_context_does_not_propagate(self):
        tracer = Tracer(sample_rate=0.0, slow_ms=1e9)
        with tracer.start_request("client.metric"):
            assert tracer.wire_context() is None

    def test_no_active_span_has_no_context(self):
        assert Tracer(sample_rate=1.0).wire_context() is None

    @pytest.mark.parametrize(
        "remote",
        [
            None,
            "garbage",
            42,
            [],
            {},
            {"sampled": False, "trace_id": "ab" * 8},
            {"sampled": True},
            {"sampled": True, "trace_id": "short"},
            {"sampled": True, "trace_id": "zz" * 8},  # not hex
            {"sampled": True, "trace_id": 1234},
            {"sampled": True, "trace_id": "ab" * 40},  # too long
        ],
    )
    def test_invalid_wire_contexts_are_ignored(self, remote):
        assert _valid_wire_context(remote) is None
        tracer = Tracer(sample_rate=1.0)
        with tracer.start_request("server.metric", remote=remote) as span:
            assert span.recording
            assert span.parent_id == ""

    def test_oversized_parent_span_id_is_dropped_not_fatal(self):
        ctx = {"sampled": True, "trace_id": "ab" * 8, "parent_span_id": "x" * 65}
        assert _valid_wire_context(ctx) == ("ab" * 8, "")


class TestTraceBuffer:
    def test_ring_evicts_oldest(self):
        buffer = TraceBuffer(capacity=2)
        for i in range(4):
            buffer.append({"trace_id": f"t{i}"})
        assert [t["trace_id"] for t in buffer.traces()] == ["t2", "t3"]
        assert len(buffer) == 2

    def test_filter_and_limit(self):
        buffer = TraceBuffer(capacity=8)
        for i in range(6):
            buffer.append({"trace_id": f"t{i % 2}", "n": i})
        assert [t["n"] for t in buffer.traces(trace_id="t0")] == [0, 2, 4]
        assert [t["n"] for t in buffer.traces(limit=2)] == [4, 5]

    def test_clear(self):
        buffer = TraceBuffer(capacity=2)
        buffer.append({"trace_id": "t"})
        buffer.clear()
        assert len(buffer) == 0

    def test_tracer_buffer_is_bounded(self):
        tracer = Tracer(sample_rate=1.0, buffer_capacity=3)
        for i in range(6):
            with tracer.start_request(f"req{i}"):
                pass
        assert [t["root"] for t in tracer.finished_traces(limit=None)] == [
            "req3", "req4", "req5",
        ]


class TestStatsAndRendering:
    def test_stats_are_json_safe(self):
        tracer = Tracer(sample_rate=1.0, slow_ms=10.0)
        with tracer.start_request("req"):
            with tracer.start_span("child"):
                pass
        stats = tracer.stats()
        json.dumps(stats)
        assert stats["enabled"] is True
        assert stats["requests"] == 1
        assert stats["spans"] == 2
        assert stats["buffered"] == 1

    def test_trace_dict_is_json_safe(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.start_request("server.metric", attributes={"op": "metric"}):
            with tracer.start_span("engine.metric", {"s": 2, "odd": object()}):
                pass
        (trace,) = tracer.finished_traces()
        json.dumps(trace)  # attribute coercion keeps it serialisable

    def test_render_trace_draws_an_indented_tree(self):
        tracer = Tracer(sample_rate=1.0)
        with tracer.start_request("server.metric"):
            with tracer.start_span("engine.metric"):
                with tracer.start_span("store.shard_load", {"shard_id": 1}):
                    pass
        (trace,) = tracer.finished_traces()
        text = render_trace(trace)
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {trace['trace_id']}  root=server.metric")
        assert "[sampled]" in lines[0]
        assert "server.metric" in lines[1]
        assert lines[2].startswith("    engine.metric"[:4]) and "engine.metric" in lines[2]
        assert "store.shard_load" in lines[3]
        assert "shard_id=1" in lines[3]
        # Children are indented deeper than their parents.
        assert lines[3].index("store.shard_load") > lines[2].index("engine.metric")

    def test_render_trace_marks_errors(self):
        tracer = Tracer(sample_rate=1.0)
        with pytest.raises(ValueError):
            with tracer.start_request("server.metric"):
                raise ValueError("bad s")
        (trace,) = tracer.finished_traces()
        assert "!error" in render_trace(trace)
        assert "bad s" in render_trace(trace)
