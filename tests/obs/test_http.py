"""The plain-HTTP /metrics listener and its /healthz + /readyz probes."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    CONTENT_TYPE,
    MetricsHTTPServer,
    MetricsRegistry,
    use_registry,
)


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    reg.counter("scraped_total", "scrapes observed").inc(7)
    return reg


class TestScrape:
    def test_get_metrics_serves_the_exposition_text(self, registry):
        with MetricsHTTPServer(registry=registry) as server:
            with urllib.request.urlopen(server.url) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == CONTENT_TYPE
                body = response.read().decode("utf-8")
        assert "# TYPE scraped_total counter" in body
        assert "scraped_total 7" in body

    def test_root_path_serves_metrics_too(self, registry):
        with MetricsHTTPServer(registry=registry) as server:
            body = urllib.request.urlopen(
                f"http://{server.host}:{server.port}/"
            ).read().decode("utf-8")
        assert "scraped_total 7" in body

    def test_other_paths_are_404(self, registry):
        with MetricsHTTPServer(registry=registry) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"http://{server.host}:{server.port}/nope")
            assert err.value.code == 404

    def test_scrape_reflects_live_values(self, registry):
        with MetricsHTTPServer(registry=registry) as server:
            registry.get("scraped_total").inc(3)
            body = urllib.request.urlopen(server.url).read().decode("utf-8")
        assert "scraped_total 10" in body

    def test_unpinned_server_follows_the_process_registry(self):
        with MetricsHTTPServer() as server:
            with use_registry(MetricsRegistry()) as reg:
                reg.gauge("live").set(4)
                body = urllib.request.urlopen(server.url).read().decode("utf-8")
                assert "live 4" in body

    def test_ephemeral_port_is_resolved(self, registry):
        with MetricsHTTPServer(port=0, registry=registry) as server:
            assert server.port > 0
            assert server.address == (server.host, server.port)
            assert str(server.port) in server.url

    def test_close_is_idempotent(self, registry):
        server = MetricsHTTPServer(registry=registry).start()
        server.close()
        server.close()


def _get_json(server, path):
    try:
        with urllib.request.urlopen(
            f"http://{server.host}:{server.port}{path}"
        ) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode("utf-8"))


class TestProbes:
    def test_healthz_is_always_ok(self, registry):
        with MetricsHTTPServer(registry=registry) as server:
            status, body = _get_json(server, "/healthz")
        assert status == 200
        assert body == {"status": "ok"}

    def test_readyz_without_a_check_reports_liveness_only(self, registry):
        """A listener with no readiness callback (PR-6 style) stays 200:
        being up is the only thing it can attest to."""
        with MetricsHTTPServer(registry=registry) as server:
            status, body = _get_json(server, "/readyz")
        assert status == 200
        assert body["status"] == "ok"

    def test_readyz_reflects_the_callback(self, registry):
        state = {"ready": True}

        def readiness():
            return state["ready"], {"role": "writer", "generation": 3}

        with MetricsHTTPServer(registry=registry, readiness=readiness) as server:
            status, body = _get_json(server, "/readyz")
            assert status == 200
            assert body["status"] == "ok"
            assert body["role"] == "writer" and body["generation"] == 3

            state["ready"] = False
            status, body = _get_json(server, "/readyz")
            assert status == 503
            assert body["status"] == "unavailable"

    def test_readyz_callback_failure_is_503_not_500(self, registry):
        def readiness():
            raise RuntimeError("probe exploded")

        with MetricsHTTPServer(registry=registry, readiness=readiness) as server:
            status, body = _get_json(server, "/readyz")
        assert status == 503
        assert "probe exploded" in body["error"]


def _head(server, path):
    request = urllib.request.Request(
        f"http://{server.host}:{server.port}{path}", method="HEAD"
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.headers, response.read()
    except urllib.error.HTTPError as err:
        return err.code, err.headers, err.read()


class TestHeadProbes:
    """Load balancers probe with HEAD: same status + headers, no body."""

    def test_head_healthz_and_metrics_have_no_body(self, registry):
        with MetricsHTTPServer(registry=registry) as server:
            status, headers, body = _head(server, "/healthz")
            assert (status, body) == (200, b"")
            assert headers["Content-Type"] == "application/json"
            assert int(headers["Content-Length"]) > 0

            status, headers, body = _head(server, "/metrics")
            assert (status, body) == (200, b"")
            assert int(headers["Content-Length"]) > 0

    def test_head_readyz_mirrors_get_status(self, registry):
        state = {"ready": True}
        with MetricsHTTPServer(
            registry=registry,
            readiness=lambda: (state["ready"], {"reason": "x"}),
        ) as server:
            assert _head(server, "/readyz")[0] == 200
            state["ready"] = False
            status, _, body = _head(server, "/readyz")
            assert (status, body) == (503, b"")


class TestProbeTiming:
    def test_every_probe_is_timed_into_the_histogram(self, registry):
        with MetricsHTTPServer(registry=registry) as server:
            _get_json(server, "/healthz")
            _get_json(server, "/readyz")
            urllib.request.urlopen(server.url).read()
            _head(server, "/healthz")
            body = urllib.request.urlopen(server.url).read().decode("utf-8")
        # healthz: 1 GET + 1 HEAD; metrics: first scrape + this one (the
        # second scrape observes itself only after rendering).
        assert 'repro_probe_seconds_count{probe="healthz"} 2' in body
        assert 'repro_probe_seconds_count{probe="readyz"} 1' in body
        assert 'repro_probe_seconds_count{probe="metrics"} 1' in body
