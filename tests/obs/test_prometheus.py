"""Prometheus text-exposition conformance of the renderer."""

import re

import pytest

from repro.obs import CONTENT_TYPE, MetricsRegistry, render_prometheus, use_registry
from repro.obs.prometheus import escape_help, escape_label_value

#: The exposition grammar for one sample line:
#: ``name{label="value",...} value``.
_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""  # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"  # more labels
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$"  # sample value
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestFormat:
    def test_content_type_is_the_prometheus_text_format(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"

    def test_every_sample_line_matches_the_grammar(self, registry):
        registry.counter("req_total", "requests", ("op", "code")).labels(
            op="metric", code="bad_request"
        ).inc(3)
        registry.gauge("depth", "queue depth").set(-2.5)
        registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0)).observe(0.2)
        for line in render_prometheus(registry).splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ", line)
            else:
                assert _SAMPLE_RE.match(line), line

    def test_help_and_type_precede_samples(self, registry):
        registry.counter("a_total", "does things").inc()
        lines = render_prometheus(registry).splitlines()
        assert lines[0] == "# HELP a_total does things"
        assert lines[1] == "# TYPE a_total counter"
        assert lines[2] == "a_total 1"

    def test_helpless_metric_skips_the_help_line(self, registry):
        registry.gauge("g").set(1)
        lines = render_prometheus(registry).splitlines()
        assert lines[0] == "# TYPE g gauge"

    def test_empty_registry_renders_empty(self, registry):
        assert render_prometheus(registry) == ""

    def test_output_ends_with_a_newline(self, registry):
        registry.counter("a_total").inc()
        assert render_prometheus(registry).endswith("\n")

    def test_defaults_to_the_process_registry(self):
        with use_registry(MetricsRegistry()) as reg:
            reg.counter("scoped_total").inc()
            assert "scoped_total 1" in render_prometheus()


class TestEscaping:
    def test_label_value_escapes(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_help_escapes(self):
        assert escape_help("a\\b\nc") == "a\\\\b\\nc"

    def test_hostile_label_values_render_parseable(self, registry):
        c = registry.counter("x_total", "", ("path",))
        c.labels(path='C:\\tmp\n"quoted"').inc()
        line = [
            l for l in render_prometheus(registry).splitlines()
            if not l.startswith("#")
        ][0]
        assert _SAMPLE_RE.match(line), line
        assert '\\\\tmp' in line and '\\"quoted\\"' in line

    def test_hostile_help_stays_one_line(self, registry):
        registry.gauge("g", "line one\nline two")
        text = render_prometheus(registry)
        assert "# HELP g line one\\nline two" in text


class TestHistogramExposition:
    def test_buckets_are_cumulative_and_end_in_inf(self, registry):
        h = registry.histogram("lat", "", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        text = render_prometheus(registry)
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="10"} 4' in text
        assert 'lat_bucket{le="+Inf"} 5' in text
        assert "lat_count 5" in text
        assert re.search(r"lat_sum 56\.05", text)

    def test_labelled_histogram_keeps_le_last(self, registry):
        h = registry.histogram("lat", "", ("op",), buckets=(1.0,))
        h.labels(op="sweep").observe(0.5)
        text = render_prometheus(registry)
        assert 'lat_bucket{op="sweep",le="1"} 1' in text
        assert 'lat_bucket{op="sweep",le="+Inf"} 1' in text
        assert 'lat_sum{op="sweep"}' in text
        assert 'lat_count{op="sweep"} 1' in text

    def test_inf_bucket_always_equals_count(self, registry):
        h = registry.histogram("lat", "", buckets=(0.001,))
        for v in (5.0, 10.0, 0.0005):
            h.observe(v)
        text = render_prometheus(registry)
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text


class TestCounterMonotonicity:
    def test_rendered_counter_never_decreases(self, registry):
        c = registry.counter("mono_total")
        seen = []
        for _ in range(5):
            c.inc(2)
            value = float(
                render_prometheus(registry).splitlines()[-1].split()[-1]
            )
            seen.append(value)
        assert seen == sorted(seen)
        assert seen[-1] == 10
