"""MetricsRegistry semantics: instruments, labels, concurrency, helpers."""

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsError,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    time_block,
    timed,
    use_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        c = registry.counter("ops_total", "ops")
        assert c.value == 0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_is_rejected(self, registry):
        c = registry.counter("ops_total")
        with pytest.raises(MetricsError):
            c.inc(-1)
        assert c.value == 0

    def test_labelled_children_are_independent(self, registry):
        c = registry.counter("hits_total", "hits", ("cache",))
        c.labels(cache="a").inc(3)
        c.labels(cache="b").inc()
        assert c.labels(cache="a").value == 3
        assert c.labels(cache="b").value == 1

    def test_unlabelled_access_on_labelled_instrument_raises(self, registry):
        c = registry.counter("hits_total", "", ("cache",))
        with pytest.raises(MetricsError):
            c.inc()

    def test_wrong_label_names_raise(self, registry):
        c = registry.counter("hits_total", "", ("cache",))
        with pytest.raises(MetricsError):
            c.labels(shard="x")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value == 6

    def test_can_go_negative(self, registry):
        g = registry.gauge("delta")
        g.dec(3)
        assert g.value == -3

    def test_callback_evaluated_at_collection(self, registry):
        g = registry.gauge("age")
        box = {"v": 1.0}
        g.set_function(lambda: box["v"])
        assert g.value == 1.0
        box["v"] = 9.0
        assert g.value == 9.0

    def test_broken_callback_reads_zero(self, registry):
        g = registry.gauge("age")
        g.set_function(lambda: 1 / 0)
        assert g.value == 0.0

    def test_set_clears_callback(self, registry):
        g = registry.gauge("age")
        g.set_function(lambda: 7.0)
        g.set(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self, registry):
        h = registry.histogram("lat", "", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        counts, total, count = h._default_child().snapshot()
        assert counts == [1, 2, 1, 1]  # last slot is the +Inf overflow
        assert count == 5
        assert total == pytest.approx(56.05)

    def test_boundary_value_belongs_to_its_bucket(self, registry):
        # Prometheus buckets are upper-inclusive: le="1.0" contains 1.0.
        h = registry.histogram("lat", "", buckets=(1.0, 2.0))
        h.observe(1.0)
        counts, _, _ = h._default_child().snapshot()
        assert counts == [1, 0, 0]

    def test_default_buckets_are_the_latency_ladder(self, registry):
        h = registry.histogram("lat")
        assert h.buckets == DEFAULT_LATENCY_BUCKETS

    def test_unsorted_or_empty_buckets_rejected(self, registry):
        with pytest.raises(MetricsError):
            registry.histogram("a", buckets=())
        with pytest.raises(MetricsError):
            registry.histogram("b", buckets=(1.0, 0.5))
        with pytest.raises(MetricsError):
            registry.histogram("c", buckets=(1.0, 1.0))


class TestRegistration:
    def test_get_or_create_is_idempotent(self, registry):
        a = registry.counter("x_total", "first")
        b = registry.counter("x_total", "second help ignored")
        assert a is b

    def test_kind_mismatch_raises(self, registry):
        registry.counter("x_total")
        with pytest.raises(MetricsError):
            registry.gauge("x_total")

    def test_labelnames_mismatch_raises(self, registry):
        registry.counter("x_total", "", ("op",))
        with pytest.raises(MetricsError):
            registry.counter("x_total", "", ("code",))

    def test_invalid_metric_name_rejected(self, registry):
        for bad in ("1abc", "a-b", "a b", ""):
            with pytest.raises(MetricsError):
                registry.counter(bad)

    def test_invalid_label_name_rejected(self, registry):
        for bad in ("1a", "a-b", "__reserved"):
            with pytest.raises(MetricsError):
                registry.counter("ok_total", "", (bad,))

    def test_get_and_collect(self, registry):
        c = registry.counter("a_total")
        g = registry.gauge("b")
        assert registry.get("a_total") is c
        assert registry.get("missing") is None
        assert registry.collect() == [c, g]  # registration order

    def test_snapshot_shape(self, registry):
        registry.counter("a_total", "help a").inc(2)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["a_total"]["type"] == "counter"
        assert snap["a_total"]["help"] == "help a"
        assert snap["a_total"]["values"] == [{"labels": {}, "value": 2}]
        hist = snap["h"]["values"][0]
        assert hist["count"] == 1
        assert hist["buckets"] == {"1": 1}
        assert hist["inf"] == 0


class TestDefaultRegistry:
    def test_use_registry_scopes_the_default(self):
        outer = get_registry()
        inner = MetricsRegistry()
        with use_registry(inner):
            assert get_registry() is inner
        assert get_registry() is outer

    def test_use_registry_restores_on_error(self):
        outer = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is outer

    def test_null_registry_instruments_are_inert(self):
        null = NullRegistry()
        c = null.counter("a_total")
        c.inc(5)
        null.gauge("g").set(3)
        null.histogram("h").observe(1.0)
        assert c.value == 0
        assert null.snapshot() == {}


class TestTimingHelpers:
    def test_time_block_observes_once(self, registry):
        h = registry.histogram("lat")
        with time_block(h):
            pass
        assert h.count == 1
        assert h.sum >= 0

    def test_time_block_observes_on_exception(self, registry):
        h = registry.histogram("lat")
        with pytest.raises(ValueError):
            with time_block(h):
                raise ValueError("boom")
        assert h.count == 1

    def test_time_block_resolves_labels(self, registry):
        h = registry.histogram("lat", "", ("op",))
        with time_block(h, op="sweep"):
            pass
        assert h.labels(op="sweep").count == 1

    def test_timed_decorator(self, registry):
        h = registry.histogram("lat", "", ("op",))

        @timed(h, op="work")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert h.labels(op="work").count == 1


class TestConcurrency:
    def test_multithreaded_counter_hammer_loses_nothing(self, registry):
        c = registry.counter("hammer_total", "", ("lane",))
        threads, per_thread, lanes = 8, 5000, 4
        children = [c.labels(lane=str(i)) for i in range(lanes)]

        def worker(tid):
            child = children[tid % lanes]
            for _ in range(per_thread):
                child.inc()

        ts = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        total = sum(child.value for child in children)
        assert total == threads * per_thread

    def test_multithreaded_histogram_hammer_loses_nothing(self, registry):
        h = registry.histogram("lat", "", buckets=(0.5, 1.5, 2.5))
        threads, per_thread = 8, 4000

        def worker(tid):
            value = float(tid % 3)  # deterministic spread over the buckets
            for _ in range(per_thread):
                h.observe(value)

        ts = [threading.Thread(target=worker, args=(i,)) for i in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        counts, total, count = h._default_child().snapshot()
        assert count == threads * per_thread
        assert sum(counts) == count
        expected_sum = sum((tid % 3) * per_thread for tid in range(threads))
        assert total == pytest.approx(expected_sum)

    def test_concurrent_registration_yields_one_instrument(self, registry):
        results = []

        def register():
            results.append(registry.counter("shared_total"))

        ts = [threading.Thread(target=register) for _ in range(8)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert all(r is results[0] for r in results)
