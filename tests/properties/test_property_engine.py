"""Property-based tests (hypothesis) for the overlap-index query engine.

The central invariants:

* for every s, the engine serves exactly what :class:`SLinePipeline` and the
  independent ``line_graph_from_filtration`` oracle compute from scratch;
* after any interleaved sequence of ``add_hyperedge`` / ``remove_hyperedge``
  updates, the incrementally maintained engine agrees exactly with a full
  rebuild over the updated hypergraph;
* the hypergraph fingerprint is invariant under member-order permutation and
  injective over the generated structures in practice.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.filtration import line_graph_from_filtration
from repro.core.pipeline import SLinePipeline
from repro.engine.engine import QueryEngine
from repro.hypergraph.builders import hypergraph_from_edge_lists

S_RANGE = range(1, 6)


@st.composite
def hypergraphs(draw, max_vertices=12, max_edges=10, max_edge_size=6):
    """Random small hypergraphs, including empty edges and duplicate edges."""
    num_vertices = draw(st.integers(min_value=1, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    edge_lists = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=num_vertices - 1),
                min_size=0,
                max_size=max_edge_size,
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return hypergraph_from_edge_lists(edge_lists, num_vertices=num_vertices)


#: One update step: add a hyperedge (member list) or remove one (index seed).
update_steps = st.lists(
    st.one_of(
        st.lists(st.integers(min_value=0, max_value=11), min_size=0, max_size=5),
        st.integers(min_value=0, max_value=1000),
    ),
    min_size=1,
    max_size=5,
)


def assert_engine_matches_oracles(engine, h):
    pipeline = SLinePipeline(metrics=("connected_components",))
    for s in S_RANGE:
        served = engine.line_graph(s)
        expected = pipeline.run(h, s)
        assert served == expected.line_graph, s
        assert served == line_graph_from_filtration(h, s), s
        assert np.array_equal(
            served.active_vertices, expected.line_graph.active_vertices
        ), s
        assert np.array_equal(
            engine.metric(s, "connected_components"),
            expected.metrics["connected_components"],
        ), s


@settings(max_examples=40, deadline=None)
@given(h=hypergraphs())
def test_engine_matches_pipeline_and_filtration_oracle(h):
    assert_engine_matches_oracles(QueryEngine(h), h)


@settings(max_examples=30, deadline=None)
@given(h=hypergraphs(), steps=update_steps)
def test_interleaved_updates_match_full_rebuild(h, steps):
    engine = QueryEngine(h)
    engine.sweep(S_RANGE)  # warm the cache so migration paths are exercised
    for step in steps:
        if isinstance(step, list):
            engine.add_hyperedge(step)
        else:
            engine.remove_hyperedge(step % engine.hypergraph.num_edges)
        engine.line_graph(2)  # interleave queries with updates
    current = engine.hypergraph
    rebuilt = QueryEngine(current)
    for s in S_RANGE:
        assert engine.line_graph(s) == rebuilt.line_graph(s), s
        assert np.array_equal(
            engine.line_graph(s).active_vertices,
            rebuilt.line_graph(s).active_vertices,
        ), s
    assert_engine_matches_oracles(engine, current)
    assert engine.stats().index_builds <= 1


@settings(max_examples=30, deadline=None)
@given(h=hypergraphs(), s_values=st.lists(st.integers(1, 6), min_size=1, max_size=4))
def test_sweep_matches_point_queries(h, s_values):
    sweep = QueryEngine(h).sweep(s_values)
    fresh = QueryEngine(h)
    for s in set(s_values):
        assert sweep.line_graphs[s] == fresh.line_graph(s)
        assert sweep.edge_counts[s] == fresh.line_graph(s).num_edges


@settings(max_examples=40, deadline=None)
@given(h=hypergraphs(), data=st.data())
def test_fingerprint_invariant_under_member_permutation(h, data):
    edge_lists = [list(map(int, h.edge_members(i))) for i in range(h.num_edges)]
    shuffled = [
        data.draw(st.permutations(members)) if members else []
        for members in edge_lists
    ]
    twin = hypergraph_from_edge_lists(shuffled, num_vertices=h.num_vertices)
    assert twin.fingerprint() == h.fingerprint()
