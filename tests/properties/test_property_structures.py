"""Property-based tests for the data-structure substrates (CSR, Graph, preprocessing)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph.connected_components import connected_components, label_propagation_components
from repro.graph.graph import Graph
from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.hypergraph.csr import CSRMatrix
from repro.hypergraph.preprocessing import relabel_edges_by_degree, squeeze_ids
from repro.hypergraph.toplexes import simplify


@st.composite
def csr_matrices(draw):
    num_rows = draw(st.integers(1, 8))
    num_cols = draw(st.integers(1, 8))
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, num_rows - 1), st.integers(0, num_cols - 1)),
            max_size=30,
        )
    )
    rows = np.array([p[0] for p in pairs], dtype=np.int64)
    cols = np.array([p[1] for p in pairs], dtype=np.int64)
    return CSRMatrix.from_pairs(rows, cols, num_rows=num_rows, num_cols=num_cols)


@st.composite
def edge_lists(draw, max_vertices=10):
    n = draw(st.integers(2, max_vertices))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda e: e[0] != e[1]
            ),
            max_size=25,
        )
    )
    return n, np.asarray(edges, dtype=np.int64).reshape(-1, 2)


@settings(max_examples=50, deadline=None)
@given(mat=csr_matrices())
def test_transpose_is_involution(mat):
    assert mat.transpose().transpose().same_pattern(mat)
    assert mat.transpose().same_pattern(mat.transpose_fast())


@settings(max_examples=50, deadline=None)
@given(mat=csr_matrices())
def test_nnz_preserved_by_transpose(mat):
    assert mat.transpose().nnz == mat.nnz
    assert mat.transpose().row_degrees().sum() == mat.nnz


@settings(max_examples=50, deadline=None)
@given(data=st.data(), mat=csr_matrices())
def test_row_permutation_preserves_rows(data, mat):
    perm = data.draw(st.permutations(range(mat.num_rows)))
    permuted = mat.permute_rows(np.array(perm, dtype=np.int64))
    for new_i, old_i in enumerate(perm):
        assert np.array_equal(np.sort(permuted.row(new_i)), np.sort(mat.row(old_i)))


@settings(max_examples=50, deadline=None)
@given(args=edge_lists())
def test_cc_and_lpcc_induce_identical_partitions(args):
    n, edges = args
    g = Graph.from_edge_list(n, edges)
    a = connected_components(g)
    b = label_propagation_components(g)
    same_a = a[:, None] == a[None, :]
    same_b = b[:, None] == b[None, :]
    assert np.array_equal(same_a, same_b)


@settings(max_examples=50, deadline=None)
@given(ids=st.lists(st.integers(0, 10**6), min_size=1, max_size=40))
def test_squeeze_ids_roundtrip(ids):
    result = squeeze_ids(ids)
    for original in set(ids):
        assert result.to_original(result.to_squeezed(original)) == original
    assert result.num_ids == len(set(ids))


@st.composite
def small_hypergraphs(draw):
    num_vertices = draw(st.integers(1, 10))
    lists = draw(
        st.lists(
            st.lists(st.integers(0, num_vertices - 1), min_size=0, max_size=5),
            min_size=1,
            max_size=8,
        )
    )
    return hypergraph_from_edge_lists(lists, num_vertices=num_vertices)


@settings(max_examples=50, deadline=None)
@given(h=small_hypergraphs())
def test_relabel_is_a_bijection_preserving_multiset_of_edges(h):
    for order in ("ascending", "descending"):
        result = relabel_edges_by_degree(h, order)
        original = sorted(h.edges_as_sets(), key=sorted)
        relabelled = sorted(result.hypergraph.edges_as_sets(), key=sorted)
        assert original == relabelled
        assert sorted(result.new_to_old.tolist()) == list(range(h.num_edges))


@settings(max_examples=50, deadline=None)
@given(h=small_hypergraphs())
def test_toplexes_cover_all_edges(h):
    """Every hyperedge is contained in at least one toplex of the simplification."""
    top_sets = simplify(h).edges_as_sets()
    assert len(top_sets) >= 1
    for edge in h.edges_as_sets():
        assert any(edge <= t for t in top_sets)
