"""Property-based tests (hypothesis) for the s-line-graph algorithms.

The central invariants:

* every algorithm computes exactly the same edge set and overlap weights as
  the brute-force all-pairs oracle;
* edge sets shrink monotonically as s grows (filtration nesting);
* duality: the s-clique graph (s-line graph of the dual) of a 2-uniform
  hypergraph at s = 1 is the underlying graph's 2-section.
"""
from hypothesis import given, settings, strategies as st

from repro.core.algorithms.hashmap import s_line_graph_hashmap
from repro.core.algorithms.heuristic import s_line_graph_heuristic
from repro.core.algorithms.spgemm import s_line_graph_spgemm, s_line_graph_spgemm_upper
from repro.core.algorithms.vectorized import s_line_graph_vectorized
from repro.core.dispatch import s_line_graph_ensemble
from repro.hypergraph.builders import hypergraph_from_edge_lists

from tests.conftest import brute_force_s_line_edges


@st.composite
def hypergraphs(draw, max_vertices=12, max_edges=10, max_edge_size=6):
    """Random small hypergraphs, including empty edges and duplicate edges."""
    num_vertices = draw(st.integers(min_value=1, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=1, max_value=max_edges))
    edge_lists = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=num_vertices - 1),
                min_size=0,
                max_size=max_edge_size,
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return hypergraph_from_edge_lists(edge_lists, num_vertices=num_vertices)


ALGORITHMS = [
    s_line_graph_heuristic,
    s_line_graph_hashmap,
    s_line_graph_vectorized,
    s_line_graph_spgemm,
    s_line_graph_spgemm_upper,
]


@settings(max_examples=60, deadline=None)
@given(h=hypergraphs(), s=st.integers(min_value=1, max_value=5))
def test_all_algorithms_match_brute_force(h, s):
    expected = brute_force_s_line_edges(h, s)
    for algorithm in ALGORITHMS:
        result = algorithm(h, s)
        assert result.graph.edge_set() == set(expected), algorithm.__name__
        assert result.graph.weight_map() == expected, algorithm.__name__


@settings(max_examples=40, deadline=None)
@given(h=hypergraphs())
def test_edge_sets_nest_as_s_grows(h):
    graphs = {s: s_line_graph_hashmap(h, s).graph for s in (1, 2, 3, 4)}
    for s in (2, 3, 4):
        assert graphs[s].edge_set() <= graphs[s - 1].edge_set()


@settings(max_examples=40, deadline=None)
@given(h=hypergraphs(), s_values=st.lists(st.integers(1, 5), min_size=1, max_size=4))
def test_ensemble_matches_individual_runs(h, s_values):
    ensemble = s_line_graph_ensemble(h, s_values)
    for s in set(s_values):
        assert ensemble[s] == s_line_graph_hashmap(h, s).graph


@settings(max_examples=40, deadline=None)
@given(h=hypergraphs(), s=st.integers(min_value=1, max_value=4))
def test_weights_are_bounded_by_edge_sizes(h, s):
    graph = s_line_graph_hashmap(h, s).graph
    sizes = h.edge_sizes()
    for (i, j), w in graph.weight_map().items():
        assert s <= w <= min(sizes[i], sizes[j])


@settings(max_examples=40, deadline=None)
@given(h=hypergraphs(), s=st.integers(min_value=1, max_value=4))
def test_dual_of_dual_gives_same_line_graph(h, s):
    direct = s_line_graph_hashmap(h, s).graph
    via_double_dual = s_line_graph_hashmap(h.dual().dual(), s).graph
    assert direct == via_double_dual


@settings(max_examples=30, deadline=None)
@given(
    edges=st.lists(
        st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(lambda e: e[0] != e[1]),
        min_size=1,
        max_size=15,
    )
)
def test_one_clique_graph_of_graph_is_two_section(edges):
    """For a 2-uniform hypergraph (a graph), L_1(H*) is the underlying graph itself."""
    h = hypergraph_from_edge_lists([list(e) for e in edges], num_vertices=10)
    clique_graph = s_line_graph_hashmap(h.dual(), 1).graph
    expected = {(min(u, v), max(u, v)) for u, v in edges}
    assert clique_graph.edge_set() == expected
