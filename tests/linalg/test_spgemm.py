"""Unit tests for the Gustavson SpGEMM kernels."""

import numpy as np
import pytest
from scipy import sparse

from repro.linalg.spgemm import spgemm_gustavson, spgemm_scipy, spgemm_upper_triangle
from repro.utils.validation import ValidationError


def random_sparse(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    return sparse.random(
        rows, cols, density=density, random_state=rng, format="csr",
        data_rvs=lambda n: rng.integers(1, 5, size=n),
    ).astype(np.int64)


class TestSpGEMM:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gustavson_matches_scipy(self, seed):
        A = random_sparse(12, 8, 0.3, seed)
        B = random_sparse(8, 10, 0.3, seed + 100)
        ours = spgemm_gustavson(A, B).toarray()
        theirs = (A @ B).toarray()
        assert np.array_equal(ours, theirs)

    def test_scipy_wrapper(self):
        A = random_sparse(5, 4, 0.5, 3)
        B = random_sparse(4, 6, 0.5, 4)
        assert np.array_equal(spgemm_scipy(A, B).toarray(), (A @ B).toarray())

    def test_dimension_mismatch(self):
        A = random_sparse(3, 4, 0.5, 0)
        B = random_sparse(5, 3, 0.5, 0)
        for fn in (spgemm_scipy, spgemm_gustavson, spgemm_upper_triangle):
            with pytest.raises(ValidationError):
                fn(A, B)

    def test_empty_matrices(self):
        A = sparse.csr_matrix((3, 4), dtype=np.int64)
        B = sparse.csr_matrix((4, 2), dtype=np.int64)
        assert spgemm_gustavson(A, B).nnz == 0
        square = sparse.csr_matrix((4, 4), dtype=np.int64)
        assert spgemm_upper_triangle(A, square).nnz == 0


class TestUpperTriangle:
    @pytest.mark.parametrize("strict", [True, False])
    def test_matches_full_product_upper_part(self, paper_example, strict):
        H = paper_example.incidence_matrix().astype(np.int64)
        full = (H.T @ H).toarray()
        ours = spgemm_upper_triangle(H.T, H, strict=strict).toarray()
        k = 1 if strict else 0
        expected = np.triu(full, k=k)
        assert np.array_equal(ours, expected)

    def test_halves_the_stored_entries(self, community_hypergraph):
        H = community_hypergraph.incidence_matrix().astype(np.int64)
        full = spgemm_gustavson(H.T, H)
        upper = spgemm_upper_triangle(H.T, H, strict=True)
        assert upper.nnz < full.nnz
