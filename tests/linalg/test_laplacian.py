"""Unit tests for Laplacians, algebraic connectivity and eigenvalue helpers."""

import math

import networkx as nx
import numpy as np
import pytest
from scipy import sparse

from repro.linalg.laplacian import (
    algebraic_connectivity,
    laplacian_matrix,
    normalized_algebraic_connectivity,
    normalized_laplacian,
)
from repro.linalg.spectral import fiedler_value, largest_eigenvalue, smallest_eigenvalues
from repro.utils.validation import ValidationError


def adjacency_of(nx_graph):
    return nx.to_scipy_sparse_array(nx_graph, format="csr").astype(float)


class TestLaplacians:
    def test_combinatorial_laplacian_matches_networkx(self):
        g = nx.karate_club_graph()
        ours = laplacian_matrix(adjacency_of(g)).toarray()
        theirs = nx.laplacian_matrix(g).toarray()
        assert np.allclose(ours, theirs)

    def test_normalized_laplacian_matches_networkx(self):
        g = nx.karate_club_graph()
        ours = normalized_laplacian(adjacency_of(g)).toarray()
        theirs = nx.normalized_laplacian_matrix(g).toarray()
        assert np.allclose(ours, theirs)

    def test_isolated_vertices_give_identity_rows(self):
        adj = sparse.csr_matrix(np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 0.0]]))
        L = normalized_laplacian(adj).toarray()
        assert L[2, 2] == pytest.approx(1.0)
        assert L[2, 0] == 0.0

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            laplacian_matrix(sparse.csr_matrix((2, 3)))

    def test_asymmetric_rejected(self):
        adj = sparse.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        with pytest.raises(ValidationError):
            normalized_laplacian(adj)


class TestAlgebraicConnectivity:
    def test_matches_networkx_on_connected_graphs(self):
        for g in (nx.path_graph(10), nx.cycle_graph(9), nx.karate_club_graph()):
            ours = algebraic_connectivity(adjacency_of(g))
            theirs = nx.algebraic_connectivity(g, method="lanczos")
            assert ours == pytest.approx(theirs, rel=1e-5, abs=1e-8)

    def test_normalized_matches_networkx(self):
        g = nx.karate_club_graph()
        ours = normalized_algebraic_connectivity(adjacency_of(g))
        theirs = nx.algebraic_connectivity(g, normalized=True, method="lanczos")
        assert ours == pytest.approx(theirs, rel=1e-5, abs=1e-8)

    def test_disconnected_graph_has_zero_connectivity(self):
        g = nx.disjoint_union(nx.path_graph(3), nx.path_graph(3))
        assert algebraic_connectivity(adjacency_of(g)) == pytest.approx(0.0, abs=1e-8)

    def test_complete_graph_normalized_value(self):
        # Normalized Laplacian of K_n has eigenvalues {0, n/(n-1) × (n-1 times)}.
        n = 6
        value = normalized_algebraic_connectivity(adjacency_of(nx.complete_graph(n)))
        assert value == pytest.approx(n / (n - 1))

    def test_tiny_graphs(self):
        assert algebraic_connectivity(sparse.csr_matrix((1, 1))) == 0.0
        assert normalized_algebraic_connectivity(sparse.csr_matrix((0, 0))) == 0.0


class TestEigenvalueHelpers:
    def test_smallest_eigenvalues_sorted(self):
        g = nx.path_graph(30)
        lap = laplacian_matrix(adjacency_of(g))
        eigs = smallest_eigenvalues(lap, k=3)
        assert eigs.tolist() == sorted(eigs.tolist())
        assert eigs[0] == pytest.approx(0.0, abs=1e-8)

    def test_k_larger_than_n_is_clamped(self):
        lap = laplacian_matrix(adjacency_of(nx.path_graph(3)))
        assert smallest_eigenvalues(lap, k=10).size == 3

    def test_invalid_k(self):
        lap = laplacian_matrix(adjacency_of(nx.path_graph(3)))
        with pytest.raises(ValidationError):
            smallest_eigenvalues(lap, k=0)

    def test_large_sparse_path_uses_arpack(self):
        g = nx.path_graph(200)
        lap = laplacian_matrix(adjacency_of(g))
        ours = smallest_eigenvalues(lap, k=2)[1]
        # The path graph's algebraic connectivity has a closed form, so the
        # oracle is exact — no second iterative eigensolver whose own
        # convergence jitter (which varies with BLAS thread load) can fail
        # the comparison.  1e-3 still distinguishes the Fiedler value from
        # its neighbours (the next eigenvalue is ~4x larger).
        analytic = 2.0 * (1.0 - math.cos(math.pi / 200))
        assert ours == pytest.approx(analytic, rel=1e-3, abs=1e-6)

    def test_fiedler_value(self):
        lap = laplacian_matrix(adjacency_of(nx.complete_graph(5)))
        assert fiedler_value(lap) == pytest.approx(5.0)

    def test_largest_eigenvalue(self):
        adj = adjacency_of(nx.complete_graph(5))
        assert largest_eigenvalue(adj) == pytest.approx(4.0)
        assert largest_eigenvalue(sparse.csr_matrix((0, 0))) == 0.0
