"""The linter's own regression suite: seeded fixtures must fire, clean
fixtures and today's ``src/`` must not, and the runtime lock tracker
must detect executed inversions without breaking stdlib lock users.
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
TOOLS_DIR = str(REPO_ROOT / "tools")
if TOOLS_DIR not in sys.path:
    sys.path.insert(0, TOOLS_DIR)

from repro_lint import cli, lockcheck  # noqa: E402
from repro_lint.model import load_source, parse_waivers  # noqa: E402

FIXTURES = REPO_ROOT / "tools" / "repro_lint" / "fixtures"


def run_lint(src_root, rules, docs_root=None):
    return cli.lint(Path(src_root), docs_root and Path(docs_root), rules)


# --------------------------------------------------------------------- #
# Seeded fixtures: every rule fires, with the expected anchors
# --------------------------------------------------------------------- #
SEEDED = [
    pytest.param(
        "lock_cycle",
        None,
        ["lock-order-cycle"],
        [("transfer.py", None)],
        id="lock-order-cycle",
    ),
    pytest.param(
        "blocking_under_lock",
        None,
        ["blocking-under-lock"],
        [("flusher.py", 19), ("flusher.py", 23)],
        id="blocking-under-lock",
    ),
    pytest.param(
        "error_contract/src",
        "error_contract/docs",
        ["error-code-contract"],
        [
            ("docs/PROTOCOL.md", None),
            ("docs/PROTOCOL.md", 9),
            ("service/transport/server.py", None),
        ],
        id="error-code-contract",
    ),
    pytest.param(
        "op_contract/src",
        None,
        ["op-contract"],
        [("service/transport/client.py", None)],
        id="op-contract",
    ),
    pytest.param(
        "failpoint_contract/src",
        None,
        ["failpoint-contract"],
        [("chaos/failpoints.py", None), ("store/wal.py", 8)],
        id="failpoint-contract",
    ),
    pytest.param(
        "metrics_doc/src",
        "metrics_doc/docs",
        ["metrics-doc-contract"],
        [("docs/OPERATIONS.md", 11), ("obs/meters.py", 8)],
        id="metrics-doc-contract",
    ),
    pytest.param(
        "wall_clock",
        None,
        ["wall-clock-arith"],
        [("lag.py", 8), ("lag.py", 12)],
        id="wall-clock-arith",
    ),
    pytest.param(
        "swallowed",
        None,
        ["swallowed-exception"],
        [("service/transport/conn.py", 7)],
        id="swallowed-exception",
    ),
    pytest.param(
        "ack_order",
        None,
        ["ack-before-fsync"],
        [("service/admission.py", 13)],
        id="ack-before-fsync",
    ),
]


@pytest.mark.parametrize("tree, docs, rules, expected", SEEDED)
def test_seeded_fixture_fires(tree, docs, rules, expected):
    findings = run_lint(
        FIXTURES / tree, rules, docs_root=docs and FIXTURES / docs
    )
    got = sorted((f.path, f.line) for f in findings)
    want = sorted(expected, key=lambda e: (e[0], -1 if e[1] is None else e[1]))
    assert len(got) == len(want), findings
    for (path, line), (want_path, want_line) in zip(got, want):
        assert path == want_path
        if want_line is not None:
            assert line == want_line
    assert {f.rule for f in findings} == set(rules)


@pytest.mark.parametrize("tree, docs, rules, expected", SEEDED)
def test_seeded_fixture_cli_exit_code(tree, docs, rules, expected):
    argv = ["--src-root", str(FIXTURES / tree), "--rules", ",".join(rules)]
    if docs:
        argv += ["--docs-root", str(FIXTURES / docs)]
    else:
        argv += ["--no-docs"]
    assert cli.main(argv) == 1


# --------------------------------------------------------------------- #
# No false positives
# --------------------------------------------------------------------- #
NON_CONTRACT_RULES = [
    "lock-order-cycle",
    "blocking-under-lock",
    "wall-clock-arith",
    "swallowed-exception",
    "ack-before-fsync",
]


def test_clean_fixture_has_no_findings():
    findings = run_lint(FIXTURES / "clean", NON_CONTRACT_RULES)
    assert findings == []


def test_whole_src_tree_is_clean():
    """The gate CI enforces: all rules over src/ against docs/, exit 0."""
    assert cli.main([]) == 0


# --------------------------------------------------------------------- #
# Waiver pragmas
# --------------------------------------------------------------------- #
def test_waiver_pragma_suppresses_on_anchor_line(tmp_path):
    (tmp_path / "lag.py").write_text(
        "import time\n"
        "\n"
        "def lag(last):\n"
        "    return time.time() - last  # repro-lint: allow[wall-clock-arith]\n"
    )
    assert run_lint(tmp_path, ["wall-clock-arith"]) == []


def test_waiver_pragma_is_rule_specific(tmp_path):
    (tmp_path / "lag.py").write_text(
        "import time\n"
        "\n"
        "def lag(last):\n"
        "    return time.time() - last  # repro-lint: allow[swallowed-exception]\n"
    )
    findings = run_lint(tmp_path, ["wall-clock-arith"])
    assert [f.rule for f in findings] == ["wall-clock-arith"]


def test_parse_waivers_multiple_rules():
    waivers = parse_waivers(
        "x = 1  # repro-lint: allow[rule-a, rule-b]\n"
    )
    assert waivers == {1: {"rule-a", "rule-b"}}


def test_syntax_error_file_is_skipped(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    assert load_source(bad, tmp_path) is None
    assert run_lint(tmp_path, NON_CONTRACT_RULES) == []


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #
def test_cli_rejects_unknown_rule():
    assert cli.main(["--rules", "no-such-rule", "--no-docs"]) == 2


def test_cli_rejects_missing_src_root(tmp_path):
    assert cli.main(["--src-root", str(tmp_path / "nope"), "--no-docs"]) == 2


def test_cli_list_rules(capsys):
    assert cli.main(["--list-rules"]) == 0
    out = capsys.readouterr().out.split()
    assert set(NON_CONTRACT_RULES) <= set(out)
    assert len(out) == 9


# --------------------------------------------------------------------- #
# Runtime lock-order detector
# --------------------------------------------------------------------- #
@pytest.fixture
def tracker():
    """A freshly-installed lockcheck, restoring prior state afterwards.

    Under ``REPRO_LOCKCHECK=1`` the session-wide tracker is already
    active; the reset on teardown keeps this test's *deliberate*
    inversions out of the session-end ``assert_clean`` graph.
    """
    was_active = lockcheck.is_active()
    lockcheck.uninstall()
    lockcheck.reset()
    lockcheck.install(hold_threshold_ms=200.0)
    yield lockcheck
    lockcheck.uninstall()
    lockcheck.reset()
    if was_active:
        lockcheck.install()


def _run_threads(*targets):
    for target in targets:
        thread = threading.Thread(target=target)
        thread.start()
        thread.join()


def test_lockcheck_detects_executed_inversion(tracker):
    a = threading.Lock()
    b = threading.Lock()

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    _run_threads(forward, backward)
    assert tracker.find_cycles()
    with pytest.raises(AssertionError):
        tracker.assert_clean()


def test_lockcheck_consistent_order_is_clean(tracker):
    a = threading.Lock()
    b = threading.Lock()

    def nested():
        with a:
            with b:
                pass

    _run_threads(nested, nested)
    assert tracker.find_cycles() == []
    tracker.assert_clean()


def test_lockcheck_same_creation_site_pair_still_cycles(tracker):
    def make():
        return threading.Lock()

    a, b = make(), make()

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    _run_threads(forward, backward)
    assert tracker.find_cycles()


def test_lockcheck_benign_same_site_nesting_is_clean(tracker):
    def make():
        return threading.Lock()

    parent, child = make(), make()
    with parent:
        with child:
            pass
    assert tracker.find_cycles() == []


def test_lockcheck_rlock_reentrancy_not_an_edge(tracker):
    lock = threading.RLock()
    other = threading.Lock()
    with lock:
        with lock:  # re-entrant: must not create a self-edge
            pass
    with other:
        pass
    tracker.assert_clean()


def test_lockcheck_condition_wait_releases_held_stack(tracker):
    cond = threading.Condition()
    ready = []

    def waiter():
        with cond:
            while not ready:
                cond.wait(timeout=5)

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.05)
    with cond:
        ready.append(1)
        cond.notify()
    thread.join()
    # A lock taken after the wait must not look nested under the
    # condition's lock from the waiter's perspective.
    tracker.assert_clean()


def test_lockcheck_hold_threshold(tracker):
    slow = threading.Lock()
    with slow:
        time.sleep(0.3)
    holds = tracker.hold_violations()
    assert holds and holds[0][1] >= 0.2
    with pytest.raises(AssertionError):
        tracker.assert_clean()


def test_lockcheck_executor_still_works(tracker):
    from concurrent.futures import ThreadPoolExecutor

    with ThreadPoolExecutor(max_workers=2) as executor:
        assert sorted(executor.map(lambda x: x * x, [1, 2, 3])) == [1, 4, 9]
    tracker.assert_clean()


def test_lockcheck_uninstall_restores_factories(tracker):
    lockcheck.uninstall()
    assert threading.Lock is lockcheck._original_lock
    assert threading.RLock is lockcheck._original_rlock
    lockcheck.install(hold_threshold_ms=200.0)  # fixture teardown expects it
