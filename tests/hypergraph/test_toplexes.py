"""Unit tests for toplex (maximal hyperedge) computation — Stage 2."""

from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.hypergraph.toplexes import is_simple, simplify, toplexes


class TestToplexes:
    def test_paper_example(self, paper_example):
        # Edges 1 ({a,b,c}) and 2 ({b,c,d}) are contained in edge 3; edge 4 is maximal.
        assert toplexes(paper_example).tolist() == [2, 3]

    def test_no_containment_all_maximal(self):
        h = hypergraph_from_edge_lists([[0, 1], [1, 2], [2, 3]])
        assert toplexes(h).tolist() == [0, 1, 2]
        assert is_simple(h)

    def test_duplicate_edges_keep_smallest_id(self):
        h = hypergraph_from_edge_lists([[0, 1], [0, 1], [0, 1, 2]])
        assert toplexes(h).tolist() == [2]

    def test_duplicate_maximal_edges(self):
        h = hypergraph_from_edge_lists([[0, 1, 2], [0, 1, 2]])
        assert toplexes(h).tolist() == [0]

    def test_singleton_contained(self):
        h = hypergraph_from_edge_lists([[0], [0, 1]])
        assert toplexes(h).tolist() == [1]

    def test_empty_edge_not_maximal_when_others_exist(self):
        h = hypergraph_from_edge_lists([[], [0, 1]], num_vertices=2)
        assert toplexes(h).tolist() == [1]

    def test_single_empty_edge_is_kept(self):
        h = hypergraph_from_edge_lists([[]], num_vertices=2)
        assert toplexes(h).tolist() == [0]

    def test_brute_force_consistency(self, community_hypergraph):
        h = community_hypergraph
        sets = h.edges_as_sets()
        expected = []
        for i, ei in enumerate(sets):
            contained = False
            for j, ej in enumerate(sets):
                if i == j:
                    continue
                if ei < ej or (ei == ej and j < i):
                    contained = True
                    break
            if not contained:
                expected.append(i)
        assert toplexes(h).tolist() == expected


class TestSimplify:
    def test_simplify_paper_example(self, paper_example):
        simple = simplify(paper_example)
        assert simple.num_edges == 2
        assert simple.num_vertices == paper_example.num_vertices
        assert simple.edges_as_sets() == [
            frozenset({0, 1, 2, 3, 4}),
            frozenset({4, 5}),
        ]
        assert simple.edge_names == [3, 4]

    def test_simplify_is_idempotent(self, community_hypergraph):
        once = simplify(community_hypergraph)
        twice = simplify(once)
        assert once == twice
        assert is_simple(once)

    def test_simplify_preserves_vertex_labels(self, paper_example):
        simple = simplify(paper_example)
        assert simple.vertex_names == paper_example.vertex_names
