"""Unit tests for hypergraph summary statistics (Table IV quantities)."""

import pytest

from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.hypergraph.properties import compute_stats


class TestComputeStats:
    def test_paper_example(self, paper_example):
        stats = compute_stats(paper_example)
        assert stats.num_vertices == 6
        assert stats.num_edges == 4
        assert stats.num_incidences == 13
        assert stats.max_edge_size == 5
        assert stats.max_vertex_degree == 3
        assert stats.avg_edge_size == pytest.approx(13 / 4)
        assert stats.avg_vertex_degree == pytest.approx(13 / 6)
        assert stats.num_empty_edges == 0
        assert stats.num_isolated_vertices == 0

    def test_empty_and_isolated_counts(self):
        h = hypergraph_from_edge_lists([[0], []], num_vertices=3)
        stats = compute_stats(h)
        assert stats.num_empty_edges == 1
        assert stats.num_isolated_vertices == 2

    def test_skewness_positive_for_skewed_sizes(self):
        h = hypergraph_from_edge_lists(
            [[0], [1], [2], [0, 1], [1, 2], list(range(30))], num_vertices=30
        )
        stats = compute_stats(h)
        assert stats.degree_skewness > 1.0

    def test_skewness_zero_for_uniform_sizes(self):
        h = hypergraph_from_edge_lists([[0, 1], [1, 2], [2, 3]])
        assert compute_stats(h).degree_skewness == pytest.approx(0.0)

    def test_as_dict_and_table_row(self, paper_example):
        stats = compute_stats(paper_example)
        d = stats.as_dict()
        assert d["num_edges"] == 4
        row = stats.as_table_row("example")
        assert "example" in row and "|E|=" in row

    def test_degenerate_hypergraph(self):
        h = hypergraph_from_edge_lists([[]], num_vertices=1)
        stats = compute_stats(h)
        assert stats.avg_edge_size == 0.0
        assert stats.max_edge_size == 0
