"""Unit tests for incidence-matrix helpers and the L / W weight matrices."""

import numpy as np

from repro.hypergraph.incidence import (
    clique_expansion_weight_matrix,
    from_incidence,
    incidence_matrix,
    line_graph_weight_matrix,
)


class TestIncidenceMatrix:
    def test_shape_and_pattern(self, paper_example):
        H = incidence_matrix(paper_example)
        assert H.shape == (6, 4)
        assert H.nnz == 13

    def test_roundtrip(self, paper_example):
        h2 = from_incidence(incidence_matrix(paper_example))
        assert h2 == paper_example


class TestLineGraphWeightMatrix:
    def test_values_match_inc(self, paper_example):
        L = line_graph_weight_matrix(paper_example).toarray()
        # Diagonal holds edge sizes.
        assert np.array_equal(np.diag(L), [3, 3, 5, 2])
        for i in range(4):
            for j in range(4):
                if i != j:
                    assert L[i, j] == paper_example.inc(i, j)

    def test_symmetry(self, community_hypergraph):
        L = line_graph_weight_matrix(community_hypergraph)
        assert (abs(L - L.T)).nnz == 0


class TestCliqueExpansionWeightMatrix:
    def test_values_match_adj(self, paper_example):
        W = clique_expansion_weight_matrix(paper_example).toarray()
        assert np.all(np.diag(W) == 0)
        for u in range(6):
            for v in range(6):
                if u != v:
                    assert W[u, v] == paper_example.adj(u, v)

    def test_w_equals_hht_minus_degrees(self, paper_example):
        H = incidence_matrix(paper_example)
        full = (H @ H.T).toarray()
        W = clique_expansion_weight_matrix(paper_example).toarray()
        degrees = paper_example.vertex_degrees()
        assert np.array_equal(full - np.diag(degrees), W)
