"""Unit tests for dual hypergraph construction."""

import numpy as np

from repro.hypergraph.dual import dual_hypergraph


class TestDual:
    def test_shape_swap(self, paper_example):
        dual = dual_hypergraph(paper_example)
        assert dual.num_vertices == 4
        assert dual.num_edges == 6

    def test_incidence_transpose(self, paper_example):
        H = paper_example.incidence_matrix().toarray()
        H_dual = dual_hypergraph(paper_example).incidence_matrix().toarray()
        assert np.array_equal(H_dual, H.T)

    def test_dual_edges_are_vertex_memberships(self, paper_example):
        dual = dual_hypergraph(paper_example)
        for v in range(paper_example.num_vertices):
            expected = paper_example.vertex_memberships(v).tolist()
            assert dual.edge_members(v).tolist() == expected

    def test_double_dual_is_identity(self, community_hypergraph):
        assert dual_hypergraph(dual_hypergraph(community_hypergraph)) == community_hypergraph

    def test_adj_inc_duality(self, paper_example):
        """adj on vertices of H equals inc on edges of H* (Section II-A)."""
        dual = dual_hypergraph(paper_example)
        for u in range(paper_example.num_vertices):
            for v in range(u + 1, paper_example.num_vertices):
                assert paper_example.adj(u, v) == dual.inc(u, v)
