"""Unit tests for hypergraph constructors."""

import numpy as np
import pytest
from scipy import sparse

from repro.hypergraph.builders import (
    hypergraph_from_bipartite,
    hypergraph_from_edge_dict,
    hypergraph_from_edge_lists,
    hypergraph_from_incidence_matrix,
    hypergraph_from_incidence_pairs,
)
from repro.utils.validation import ValidationError


class TestFromEdgeLists:
    def test_basic(self):
        h = hypergraph_from_edge_lists([[0, 1, 2], [2, 3]])
        assert h.num_edges == 2
        assert h.num_vertices == 4

    def test_duplicate_membership_collapsed(self):
        h = hypergraph_from_edge_lists([[0, 0, 1]])
        assert h.edge_size(0) == 2

    def test_explicit_vertex_count(self):
        h = hypergraph_from_edge_lists([[0]], num_vertices=10)
        assert h.num_vertices == 10
        assert h.vertex_degree(9) == 0

    def test_empty_edge(self):
        h = hypergraph_from_edge_lists([[0, 1], []])
        assert h.edge_size(1) == 0

    def test_unsorted_members_become_sorted(self):
        h = hypergraph_from_edge_lists([[3, 1, 2]])
        assert h.edge_members(0).tolist() == [1, 2, 3]


class TestFromEdgeDict:
    def test_labels_assigned_in_first_seen_order(self):
        h = hypergraph_from_edge_dict({"e1": ["x", "y"], "e2": ["y", "z"]})
        assert h.edge_names == ["e1", "e2"]
        assert h.vertex_names == ["x", "y", "z"]
        assert h.edge_members(1).tolist() == [1, 2]

    def test_paper_example(self, paper_example):
        assert paper_example.num_edges == 4
        assert paper_example.inc(0, 2) == 3

    def test_empty_dict(self):
        h = hypergraph_from_edge_dict({})
        assert h.num_edges == 0
        assert h.num_vertices == 0

    def test_repeated_vertex_labels_shared(self):
        h = hypergraph_from_edge_dict({"a": ["v"], "b": ["v"]})
        assert h.num_vertices == 1
        assert h.vertex_degree(0) == 2


class TestFromIncidencePairs:
    def test_basic(self):
        h = hypergraph_from_incidence_pairs([0, 0, 1], [0, 1, 1])
        assert h.num_edges == 2
        assert h.num_vertices == 2
        assert h.edge_members(0).tolist() == [0, 1]

    def test_explicit_shape(self):
        h = hypergraph_from_incidence_pairs([0], [0], num_edges=5, num_vertices=3)
        assert (h.num_edges, h.num_vertices) == (5, 3)

    def test_duplicates_collapsed(self):
        h = hypergraph_from_incidence_pairs([0, 0], [1, 1])
        assert h.num_incidences == 1


class TestFromIncidenceMatrix:
    def test_dense_input(self):
        mat = np.array([[1, 0], [1, 1], [0, 1]])  # 3 vertices x 2 edges
        h = hypergraph_from_incidence_matrix(mat)
        assert h.num_vertices == 3
        assert h.num_edges == 2
        assert h.edge_members(0).tolist() == [0, 1]

    def test_sparse_input(self):
        mat = sparse.random(10, 6, density=0.3, random_state=0, format="csr")
        h = hypergraph_from_incidence_matrix(mat)
        assert h.num_vertices == 10
        assert h.num_edges == 6
        assert h.num_incidences == (mat != 0).sum()

    def test_roundtrip_through_incidence(self):
        h1 = hypergraph_from_edge_lists([[0, 2], [1], [0, 1, 2]])
        h2 = hypergraph_from_incidence_matrix(h1.incidence_matrix())
        assert h1 == h2


class TestFromBipartite:
    def test_roundtrip(self, paper_example):
        b = paper_example.to_bipartite()
        h = hypergraph_from_bipartite(b)
        assert h.num_edges == paper_example.num_edges
        assert h.num_vertices == paper_example.num_vertices
        assert h.num_incidences == paper_example.num_incidences

    def test_empty_graph_rejected(self):
        import networkx as nx

        with pytest.raises(ValidationError):
            hypergraph_from_bipartite(nx.Graph())

    def test_bad_partition_edge_rejected(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge(("v", 0), ("v", 1))
        with pytest.raises(ValidationError):
            hypergraph_from_bipartite(g)
