"""Unit tests for the CSR adjacency structure."""

import numpy as np
import pytest
from scipy import sparse

from repro.hypergraph.csr import CSRMatrix
from repro.utils.validation import ValidationError


class TestConstruction:
    def test_empty(self):
        mat = CSRMatrix.empty(3, 5)
        assert mat.shape == (3, 5)
        assert mat.nnz == 0
        assert mat.row(0).size == 0

    def test_from_pairs_basic(self):
        mat = CSRMatrix.from_pairs([0, 0, 1, 2], [1, 2, 0, 2])
        assert mat.shape == (3, 3)
        assert mat.nnz == 4
        assert mat.row(0).tolist() == [1, 2]
        assert mat.row(1).tolist() == [0]
        assert mat.row(2).tolist() == [2]

    def test_from_pairs_dedup(self):
        mat = CSRMatrix.from_pairs([0, 0, 0], [1, 1, 2])
        assert mat.nnz == 2
        assert mat.row(0).tolist() == [1, 2]

    def test_from_pairs_no_dedup(self):
        mat = CSRMatrix.from_pairs([0, 0, 0], [1, 1, 2], dedup=False)
        assert mat.nnz == 3

    def test_from_pairs_explicit_shape(self):
        mat = CSRMatrix.from_pairs([0], [0], num_rows=4, num_cols=7)
        assert mat.shape == (4, 7)
        assert mat.row_degree(3) == 0

    def test_from_pairs_shape_too_small(self):
        with pytest.raises(ValidationError):
            CSRMatrix.from_pairs([0, 5], [0, 0], num_rows=2)
        with pytest.raises(ValidationError):
            CSRMatrix.from_pairs([0, 0], [0, 9], num_cols=2)

    def test_from_pairs_negative_indices(self):
        with pytest.raises(ValidationError):
            CSRMatrix.from_pairs([-1], [0])
        with pytest.raises(ValidationError):
            CSRMatrix.from_pairs([0], [-2])

    def test_from_pairs_length_mismatch(self):
        with pytest.raises(ValidationError):
            CSRMatrix.from_pairs([0, 1], [0])

    def test_from_lists(self):
        mat = CSRMatrix.from_lists([[0, 1], [], [2, 0]])
        assert mat.shape == (3, 3)
        assert mat.row(1).size == 0
        assert mat.row(2).tolist() == [0, 2]

    def test_from_lists_empty_input(self):
        mat = CSRMatrix.from_lists([])
        assert mat.shape == (0, 0)
        assert mat.nnz == 0

    def test_from_scipy_roundtrip(self):
        dense = np.array([[1, 0, 1], [0, 0, 0], [1, 1, 1]])
        mat = CSRMatrix.from_scipy(sparse.csr_matrix(dense))
        back = mat.to_scipy().toarray()
        assert np.array_equal(back != 0, dense != 0)

    def test_invalid_indptr(self):
        with pytest.raises(ValidationError):
            CSRMatrix(indptr=np.array([1, 2]), indices=np.array([0, 0]), num_cols=1)
        with pytest.raises(ValidationError):
            CSRMatrix(indptr=np.array([0, 2]), indices=np.array([0]), num_cols=1)
        with pytest.raises(ValidationError):
            CSRMatrix(indptr=np.array([0, 2, 1]), indices=np.array([0, 0]), num_cols=1)

    def test_column_index_out_of_range(self):
        with pytest.raises(ValidationError):
            CSRMatrix(indptr=np.array([0, 1]), indices=np.array([5]), num_cols=2)

    def test_data_alignment(self):
        with pytest.raises(ValidationError):
            CSRMatrix(
                indptr=np.array([0, 2]),
                indices=np.array([0, 1]),
                num_cols=2,
                data=np.array([1.0]),
            )


class TestAccess:
    def test_row_degrees(self):
        mat = CSRMatrix.from_lists([[0, 1, 2], [1], []])
        assert mat.row_degrees().tolist() == [3, 1, 0]
        assert mat.row_degree(0) == 3

    def test_row_out_of_range(self):
        mat = CSRMatrix.empty(2, 2)
        with pytest.raises(IndexError):
            mat.row(2)
        with pytest.raises(IndexError):
            mat.row_degree(-1)

    def test_row_data_default_ones(self):
        mat = CSRMatrix.from_lists([[0, 1]])
        assert mat.row_data(0).tolist() == [1, 1]

    def test_iter_rows(self):
        mat = CSRMatrix.from_lists([[1], [0, 2]])
        rows = dict(mat.iter_rows())
        assert rows[0].tolist() == [1]
        assert rows[1].tolist() == [0, 2]

    def test_rows_as_sets(self):
        mat = CSRMatrix.from_lists([[2, 0], [1]])
        assert mat.rows_as_sets() == [frozenset({0, 2}), frozenset({1})]


class TestTransforms:
    def test_transpose_matches_scipy(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((6, 9)) < 0.3).astype(int)
        mat = CSRMatrix.from_scipy(sparse.csr_matrix(dense))
        t1 = mat.transpose()
        t2 = mat.transpose_fast()
        assert t1.shape == (9, 6)
        assert t1.same_pattern(t2)
        assert np.array_equal(t1.to_scipy().toarray() != 0, dense.T != 0)

    def test_transpose_empty(self):
        mat = CSRMatrix.empty(4, 3)
        assert mat.transpose().shape == (3, 4)

    def test_double_transpose_identity(self):
        mat = CSRMatrix.from_lists([[0, 2], [1], [0, 1, 2]])
        assert mat.transpose().transpose().same_pattern(mat)

    def test_permute_rows(self):
        mat = CSRMatrix.from_lists([[0], [1, 2], [2]])
        perm = np.array([2, 0, 1])
        out = mat.permute_rows(perm)
        assert out.row(0).tolist() == [2]
        assert out.row(1).tolist() == [0]
        assert out.row(2).tolist() == [1, 2]

    def test_permute_rows_invalid(self):
        mat = CSRMatrix.from_lists([[0], [1]])
        with pytest.raises(ValidationError):
            mat.permute_rows(np.array([0, 0]))
        with pytest.raises(ValidationError):
            mat.permute_rows(np.array([0]))

    def test_copy_is_deep(self):
        mat = CSRMatrix.from_lists([[0, 1]])
        cp = mat.copy()
        cp.indices[0] = 1
        assert mat.indices[0] == 0

    def test_same_pattern_shape_mismatch(self):
        a = CSRMatrix.from_lists([[0]])
        b = CSRMatrix.from_lists([[0], [0]])
        assert not a.same_pattern(b)

    def test_equality_operator(self):
        a = CSRMatrix.from_lists([[0, 1], [2]])
        b = CSRMatrix.from_lists([[1, 0], [2]])
        assert a == b
