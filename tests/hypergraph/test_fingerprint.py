"""Tests for :meth:`Hypergraph.fingerprint` (the engine cache key)."""

import numpy as np

from repro.hypergraph.builders import (
    hypergraph_from_edge_lists,
)
from repro.hypergraph.csr import CSRMatrix
from repro.hypergraph.hypergraph import Hypergraph

EDGE_LISTS = [[0, 1, 2], [1, 2, 3], [0, 1, 2, 3, 4], [4, 5]]


class TestFingerprintStability:
    def test_is_hex_sha256(self, paper_example_unlabelled):
        fp = paper_example_unlabelled.fingerprint()
        assert isinstance(fp, str)
        assert len(fp) == 64
        int(fp, 16)  # raises if not hex

    def test_memoised_and_deterministic(self, paper_example_unlabelled):
        first = paper_example_unlabelled.fingerprint()
        assert paper_example_unlabelled.fingerprint() is first
        rebuilt = hypergraph_from_edge_lists(EDGE_LISTS, num_vertices=6)
        assert rebuilt.fingerprint() == first

    def test_member_order_does_not_matter(self):
        a = hypergraph_from_edge_lists(EDGE_LISTS, num_vertices=6)
        shuffled = [list(reversed(members)) for members in EDGE_LISTS]
        b = hypergraph_from_edge_lists(shuffled, num_vertices=6)
        assert a.fingerprint() == b.fingerprint()

    def test_labels_do_not_matter(self, paper_example, paper_example_unlabelled):
        assert paper_example.fingerprint() == paper_example_unlabelled.fingerprint()

    def test_duplicate_members_collapse(self):
        a = hypergraph_from_edge_lists([[0, 1, 1, 2], [2, 3]], num_vertices=4)
        b = hypergraph_from_edge_lists([[0, 1, 2], [3, 2]], num_vertices=4)
        assert a.fingerprint() == b.fingerprint()

    def test_unsorted_direct_csr_matches_builder(self):
        # A CSR built by hand with unsorted rows hashes like the canonical one.
        direct = Hypergraph(
            edges=CSRMatrix(
                indptr=np.array([0, 3, 5]),
                indices=np.array([2, 0, 1, 3, 2]),
                num_cols=4,
            )
        )
        built = hypergraph_from_edge_lists([[0, 1, 2], [2, 3]], num_vertices=4)
        assert direct.fingerprint() == built.fingerprint()


class TestFingerprintSensitivity:
    def test_structure_changes_fingerprint(self):
        base = hypergraph_from_edge_lists(EDGE_LISTS, num_vertices=6)
        changed = hypergraph_from_edge_lists(
            [[0, 1, 2], [1, 2, 3], [0, 1, 2, 3, 5], [4, 5]], num_vertices=6
        )
        assert base.fingerprint() != changed.fingerprint()

    def test_edge_order_matters(self):
        # Hyperedge IDs are semantic (they are the s-line-graph vertex IDs).
        a = hypergraph_from_edge_lists([[0, 1], [2, 3]], num_vertices=4)
        b = hypergraph_from_edge_lists([[2, 3], [0, 1]], num_vertices=4)
        assert a.fingerprint() != b.fingerprint()

    def test_vertex_count_matters(self):
        a = hypergraph_from_edge_lists([[0, 1]], num_vertices=2)
        b = hypergraph_from_edge_lists([[0, 1]], num_vertices=3)
        assert a.fingerprint() != b.fingerprint()

    def test_empty_trailing_edge_matters(self):
        a = hypergraph_from_edge_lists([[0, 1]], num_vertices=2)
        b = hypergraph_from_edge_lists([[0, 1], []], num_vertices=2)
        assert a.fingerprint() != b.fingerprint()

    def test_dual_differs_for_asymmetric_shape(self, paper_example_unlabelled):
        h = paper_example_unlabelled
        assert h.fingerprint() != h.dual().fingerprint()
