"""Unit tests for Stage-1 preprocessing and Stage-4 ID squeezing."""

import numpy as np
import pytest

from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.hypergraph.preprocessing import (
    preprocess,
    relabel_edges_by_degree,
    remove_empty_edges,
    remove_isolated_vertices,
    squeeze_ids,
)
from repro.utils.validation import ValidationError


class TestRemoveEmptyEdges:
    def test_removes_and_reports(self):
        h = hypergraph_from_edge_lists([[0, 1], [], [1, 2]], num_vertices=3)
        out, kept = remove_empty_edges(h)
        assert out.num_edges == 2
        assert kept.tolist() == [0, 2]
        assert out.edge_members(1).tolist() == [1, 2]

    def test_noop_when_clean(self, paper_example):
        out, kept = remove_empty_edges(paper_example)
        assert out is paper_example
        assert kept.tolist() == [0, 1, 2, 3]

    def test_labels_follow(self):
        from repro.hypergraph.builders import hypergraph_from_edge_dict

        h = hypergraph_from_edge_dict({"a": ["x"], "b": [], "c": ["y"]})
        out, _ = remove_empty_edges(h)
        assert out.edge_names == ["a", "c"]


class TestRemoveIsolatedVertices:
    def test_removes_and_remaps(self):
        h = hypergraph_from_edge_lists([[0, 3]], num_vertices=5)
        out, kept = remove_isolated_vertices(h)
        assert out.num_vertices == 2
        assert kept.tolist() == [0, 3]
        assert out.edge_members(0).tolist() == [0, 1]

    def test_noop_when_clean(self, paper_example):
        out, kept = remove_isolated_vertices(paper_example)
        assert out is paper_example
        assert kept.size == 6


class TestRelabelByDegree:
    def test_ascending(self, paper_example):
        result = relabel_edges_by_degree(paper_example, "ascending")
        sizes = result.hypergraph.edge_sizes()
        assert sizes.tolist() == sorted(sizes.tolist())
        # Edge sizes are [3,3,5,2]; ascending puts original edge 3 (size 2) first.
        assert result.new_to_old.tolist() == [3, 0, 1, 2]
        assert result.map_edge_to_original(0) == 3

    def test_descending(self, paper_example):
        result = relabel_edges_by_degree(paper_example, "descending")
        sizes = result.hypergraph.edge_sizes()
        assert sizes.tolist() == sorted(sizes.tolist(), reverse=True)

    def test_none_is_identity(self, paper_example):
        result = relabel_edges_by_degree(paper_example, "none")
        assert result.hypergraph is paper_example
        assert result.new_to_old.tolist() == [0, 1, 2, 3]

    def test_inverse_permutation(self, community_hypergraph):
        result = relabel_edges_by_degree(community_hypergraph, "ascending")
        n = community_hypergraph.num_edges
        assert result.old_to_new[result.new_to_old].tolist() == list(range(n))

    def test_membership_preserved(self, paper_example):
        result = relabel_edges_by_degree(paper_example, "descending")
        for new_id in range(paper_example.num_edges):
            old_id = int(result.new_to_old[new_id])
            assert (
                result.hypergraph.edge_members(new_id).tolist()
                == paper_example.edge_members(old_id).tolist()
            )

    def test_labels_follow(self, paper_example):
        result = relabel_edges_by_degree(paper_example, "ascending")
        assert result.hypergraph.edge_names == [4, 1, 2, 3]

    def test_invalid_order(self, paper_example):
        with pytest.raises(ValidationError):
            relabel_edges_by_degree(paper_example, "sideways")


class TestSqueezeIds:
    def test_basic(self):
        result = squeeze_ids([10, 3, 10, 7])
        assert result.new_to_old.tolist() == [3, 7, 10]
        assert result.to_squeezed(10) == 2
        assert result.to_original(0) == 3
        assert result.num_ids == 3

    def test_missing_id_raises(self):
        result = squeeze_ids([5])
        with pytest.raises(KeyError):
            result.to_squeezed(6)

    def test_already_contiguous(self):
        result = squeeze_ids([0, 1, 2])
        assert result.new_to_old.tolist() == [0, 1, 2]

    def test_2d_input_flattened(self):
        result = squeeze_ids(np.array([[4, 2], [2, 9]]))
        assert result.new_to_old.tolist() == [2, 4, 9]


class TestPreprocess:
    def test_full_pipeline(self):
        h = hypergraph_from_edge_lists([[0, 1], [], [1, 4]], num_vertices=6)
        result = preprocess(h, relabel="ascending")
        assert result.removed_empty_edges == 1
        assert result.removed_isolated_vertices == 3
        assert result.hypergraph.num_edges == 2
        assert result.hypergraph.num_vertices == 3
        assert result.relabel is not None

    def test_no_relabel(self, paper_example):
        result = preprocess(paper_example, relabel="none")
        assert result.relabel is None
        assert result.hypergraph == paper_example

    def test_keep_degenerates_if_requested(self):
        h = hypergraph_from_edge_lists([[0], []], num_vertices=3)
        result = preprocess(
            h, drop_empty_edges=False, drop_isolated_vertices=False
        )
        assert result.hypergraph.num_edges == 2
        assert result.hypergraph.num_vertices == 3
