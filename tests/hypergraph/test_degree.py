"""Unit tests for degree-distribution analysis."""

import numpy as np
import pytest

from repro.generators.datasets import load_dataset
from repro.hypergraph.degree import (
    analyse_degrees,
    complementary_cdf,
    degree_histogram,
    edge_size_distribution,
    gini_coefficient,
    power_law_alpha,
    vertex_degree_distribution,
)
from repro.utils.validation import ValidationError


class TestBasicStatistics:
    def test_degree_histogram(self):
        hist = degree_histogram(np.array([1, 2, 2, 3, 3, 3]))
        assert hist == {1: 1, 2: 2, 3: 3}
        assert degree_histogram(np.array([], dtype=int)) == {}

    def test_complementary_cdf(self):
        degrees, ccdf = complementary_cdf(np.array([1, 1, 2, 4]))
        assert degrees.tolist() == [1, 2, 4]
        assert ccdf.tolist() == pytest.approx([1.0, 0.5, 0.25])

    def test_gini_uniform_is_zero(self):
        assert gini_coefficient(np.array([3, 3, 3, 3])) == pytest.approx(0.0, abs=1e-12)

    def test_gini_concentrated_is_large(self):
        concentrated = np.array([0, 0, 0, 0, 100])
        assert gini_coefficient(concentrated) > 0.7

    def test_gini_rejects_negative(self):
        with pytest.raises(ValidationError):
            gini_coefficient(np.array([1.0, -2.0]))

    def test_power_law_alpha_recovers_exponent(self):
        rng = np.random.default_rng(0)
        # Sample a discrete power law with alpha ~ 2.5 via inverse transform.
        u = rng.random(20000)
        samples = np.floor((1.0 - u) ** (-1.0 / 1.5)).astype(int)
        alpha = power_law_alpha(samples, x_min=2)
        assert 2.1 < alpha < 2.9

    def test_power_law_alpha_degenerate(self):
        assert power_law_alpha(np.array([1, 1, 1]), x_min=5) == float("inf")


class TestAnalyseDegrees:
    def test_empty_sequence(self):
        dist = analyse_degrees(np.array([], dtype=int))
        assert dist.mean == 0.0 and dist.maximum == 0

    def test_summary_fields(self):
        dist = analyse_degrees(np.array([1, 1, 1, 1, 1, 1, 1, 1, 1, 20]))
        assert dist.maximum == 20
        assert dist.top_decile_share > 0.5
        assert dist.is_skewed()

    def test_uniform_not_skewed(self):
        dist = analyse_degrees(np.full(50, 4))
        assert not dist.is_skewed()


class TestHypergraphDistributions:
    def test_paper_example(self, paper_example):
        edges = edge_size_distribution(paper_example)
        vertices = vertex_degree_distribution(paper_example)
        assert edges.maximum == 5
        assert vertices.maximum == 3

    def test_surrogates_are_skewed(self):
        # The paper's Table IV note: all inputs have skewed hyperedge degrees.
        for name in ("livejournal", "web"):
            h = load_dataset(name, scale=0.15, seed=0)
            assert edge_size_distribution(h).is_skewed(), name
