"""Unit tests for the Hypergraph type and the inc/adj structure functions."""

import numpy as np
import pytest

from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.hypergraph.csr import CSRMatrix
from repro.hypergraph.hypergraph import Hypergraph
from repro.utils.validation import ValidationError


class TestShape:
    def test_basic_counts(self, paper_example):
        assert paper_example.num_vertices == 6
        assert paper_example.num_edges == 4
        assert paper_example.num_incidences == 3 + 3 + 5 + 2

    def test_edge_sizes(self, paper_example):
        assert paper_example.edge_sizes().tolist() == [3, 3, 5, 2]
        assert paper_example.edge_size(2) == 5

    def test_vertex_degrees(self, paper_example):
        # a:2, b:3, c:3, d:2, e:2, f:1 in first-seen order a,b,c,d,e,f
        assert paper_example.vertex_degrees().tolist() == [2, 3, 3, 2, 2, 1]
        assert paper_example.vertex_degree(1) == 3

    def test_memberships(self, paper_example):
        assert paper_example.edge_members(3).tolist() == [4, 5]
        assert paper_example.vertex_memberships(0).tolist() == [0, 2]

    def test_iter_edges(self, paper_example):
        edges = dict(paper_example.iter_edges())
        assert len(edges) == 4
        assert edges[0].tolist() == [0, 1, 2]

    def test_edges_as_sets(self, paper_example_unlabelled):
        sets = paper_example_unlabelled.edges_as_sets()
        assert sets[2] == frozenset({0, 1, 2, 3, 4})


class TestLabels:
    def test_names_roundtrip(self, paper_example):
        assert paper_example.edge_names == [1, 2, 3, 4]
        assert paper_example.vertex_names == ["a", "b", "c", "d", "e", "f"]
        assert paper_example.edge_name(0) == 1
        assert paper_example.vertex_name(5) == "f"

    def test_unlabelled_falls_back_to_ids(self, paper_example_unlabelled):
        assert paper_example_unlabelled.edge_name(3) == 3
        assert paper_example_unlabelled.vertex_name(2) == 2

    def test_label_length_validation(self):
        edges = CSRMatrix.from_lists([[0, 1]])
        with pytest.raises(ValidationError):
            Hypergraph(edges=edges, edge_names=["a", "b"])
        with pytest.raises(ValidationError):
            Hypergraph(edges=edges, vertex_names=["x"])


class TestStructureFunctions:
    def test_inc_pairwise(self, paper_example):
        # inc(1,2)=|{b,c}|=2, inc(1,3)=3, inc(2,3)=3, inc(3,4)=1, inc(1,4)=0.
        assert paper_example.inc(0, 1) == 2
        assert paper_example.inc(0, 2) == 3
        assert paper_example.inc(1, 2) == 3
        assert paper_example.inc(2, 3) == 1
        assert paper_example.inc(0, 3) == 0

    def test_adj_pairwise(self, paper_example):
        # adj(b, c) = 3 (the paper's example value).
        assert paper_example.adj(1, 2) == 3
        assert paper_example.adj(0, 5) == 0

    def test_inc_set(self, paper_example):
        # inc({1,2,3}) = 2 (the paper's example value: {b, c}).
        assert paper_example.inc_set([0, 1, 2]) == 2
        assert paper_example.inc_set([2]) == 5  # inc({e}) = |e|

    def test_adj_set(self, paper_example):
        assert paper_example.adj_set([1, 2]) == 3
        assert paper_example.adj_set([0]) == 2  # adj({v}) = deg(v)

    def test_empty_argument_raises(self, paper_example):
        with pytest.raises(ValidationError):
            paper_example.inc_set([])
        with pytest.raises(ValidationError):
            paper_example.adj_set([])


class TestDerivedStructures:
    def test_dual_shape(self, paper_example):
        dual = paper_example.dual()
        assert dual.num_vertices == paper_example.num_edges
        assert dual.num_edges == paper_example.num_vertices
        assert dual.num_incidences == paper_example.num_incidences

    def test_dual_involution(self, paper_example):
        assert paper_example.dual().dual() == paper_example

    def test_dual_swaps_labels(self, paper_example):
        dual = paper_example.dual()
        assert dual.edge_names == ["a", "b", "c", "d", "e", "f"]
        assert dual.vertex_names == [1, 2, 3, 4]

    def test_incidence_matrix(self, paper_example):
        H = paper_example.incidence_matrix()
        assert H.shape == (6, 4)
        assert H.nnz == paper_example.num_incidences
        # vertex b (index 1) is in edges 1, 2, 3 (indices 0, 1, 2).
        assert H[1].toarray().ravel().tolist() == [1, 1, 1, 0]

    def test_to_bipartite(self, paper_example):
        b = paper_example.to_bipartite()
        assert b.number_of_nodes() == 6 + 4
        assert b.number_of_edges() == paper_example.num_incidences
        assert b.has_edge(("e", 3), ("v", 4))


class TestValidation:
    def test_transpose_mismatch_rejected(self):
        edges = CSRMatrix.from_lists([[0, 1], [1]])
        bad_vertices = CSRMatrix.from_lists([[0], [0]])  # wrong nnz
        with pytest.raises(ValidationError):
            Hypergraph(edges=edges, vertices=bad_vertices)

    def test_non_csr_rejected(self):
        with pytest.raises(ValidationError):
            Hypergraph(edges=np.eye(3))

    def test_equality(self):
        a = hypergraph_from_edge_lists([[0, 1], [1, 2]])
        b = hypergraph_from_edge_lists([[1, 0], [2, 1]])
        c = hypergraph_from_edge_lists([[0, 1], [0, 2]])
        assert a == b
        assert a != c

    def test_repr(self, paper_example):
        assert "num_edges=4" in repr(paper_example)
