"""Tests for :class:`repro.engine.QueryEngine` — caching, sweeps, pipeline reuse."""

import numpy as np
import pytest

from repro.core.filtration import line_graph_from_filtration
from repro.core.pipeline import SLinePipeline
from repro.engine.engine import QueryEngine
from repro.generators.random import random_hypergraph
from repro.utils.validation import ValidationError

from tests.conftest import PAPER_EXAMPLE_SLINE_EDGES


@pytest.fixture
def engine(paper_example_unlabelled):
    return QueryEngine(paper_example_unlabelled)


@pytest.fixture
def random_h():
    sizes = [2 + (i % 5) for i in range(25)]
    return random_hypergraph(num_vertices=30, num_edges=25, edge_sizes=sizes, seed=7)


class TestQueries:
    @pytest.mark.parametrize("s", [1, 2, 3, 4])
    def test_line_graph_matches_figure_2(self, engine, s):
        assert engine.line_graph(s).edge_set() == PAPER_EXAMPLE_SLINE_EDGES[s]

    def test_matches_pipeline_and_oracle(self, random_h):
        engine = QueryEngine(random_h)
        pipeline = SLinePipeline(metrics=("connected_components", "pagerank"))
        for s in range(1, 7):
            served = engine.line_graph(s)
            result = pipeline.run(random_h, s)
            assert served == result.line_graph
            assert served == line_graph_from_filtration(random_h, s)
            assert np.array_equal(
                served.active_vertices, result.line_graph.active_vertices
            )
            for name in ("connected_components", "pagerank"):
                assert np.array_equal(engine.metric(s, name), result.metrics[name])

    def test_metric_by_hyperedge_matches_pipeline(self, engine, paper_example_unlabelled):
        result = SLinePipeline(metrics=("pagerank",)).run(paper_example_unlabelled, 2)
        assert engine.metric_by_hyperedge(2, "pagerank") == pytest.approx(
            result.metric_by_hyperedge("pagerank")
        )

    def test_metrics_share_one_squeeze(self, engine):
        engine.metrics(2, ("connected_components", "lpcc", "pagerank"))
        keys = engine._cache.keys()
        assert sum(1 for _, s, kind in keys if s == 2 and kind == "squeezed") == 1

    def test_unknown_metric_rejected(self, engine):
        with pytest.raises(ValidationError):
            engine.metric(2, "nope")

    def test_requires_hypergraph(self):
        with pytest.raises(ValidationError):
            QueryEngine("not a hypergraph")


class TestCaching:
    def test_repeated_queries_hit_cache(self, engine):
        first = engine.line_graph(2)
        assert engine.line_graph(2) is first
        stats = engine.stats()
        assert stats.cache_hits >= 1
        assert stats.index_builds == 1

    def test_index_built_once_for_all_s(self, engine):
        for s in range(1, 6):
            engine.line_graph(s)
        assert engine.stats().index_builds == 1

    def test_tiny_cache_still_correct(self, paper_example_unlabelled):
        engine = QueryEngine(paper_example_unlabelled, cache_size=2)
        for s in (1, 2, 3, 4, 1, 2):
            assert engine.line_graph(s).edge_set() == PAPER_EXAMPLE_SLINE_EDGES[s]
        assert engine.stats().cache_evictions > 0

    def test_hit_rate(self, engine):
        engine.line_graph(2)
        engine.line_graph(2)
        assert 0.0 < engine.stats().hit_rate() < 1.0


class TestSweep:
    def test_sweep_matches_point_queries(self, random_h):
        engine = QueryEngine(random_h)
        sweep = engine.sweep(range(1, 6), metrics=("connected_components",))
        assert sweep.s_values == [1, 2, 3, 4, 5]
        for s in sweep.s_values:
            assert sweep.line_graphs[s] == QueryEngine(random_h).line_graph(s)
            assert sweep.edge_counts[s] == sweep.line_graphs[s].num_edges
            assert np.array_equal(
                sweep.metrics[s]["connected_components"],
                engine.metric(s, "connected_components"),
            )

    def test_sweep_components_match_pipeline(self, engine, paper_example_unlabelled):
        sweep = engine.sweep(range(1, 5), metrics=("connected_components",))
        pipeline = SLinePipeline(metrics=("connected_components",))
        for s in range(1, 5):
            assert sweep.num_components(s) == pipeline.run(
                paper_example_unlabelled, s
            ).num_components()

    def test_num_components_without_metric(self, engine):
        sweep = engine.sweep([2])
        assert sweep.num_components(2) is None

    def test_second_sweep_is_all_hits(self, engine):
        engine.sweep(range(1, 5), metrics=("lpcc",))
        misses = engine.stats().cache_misses
        engine.sweep(range(1, 5), metrics=("lpcc",))
        assert engine.stats().cache_misses == misses

    def test_deduplicates_and_sorts_s(self, engine):
        sweep = engine.sweep([3, 1, 3, 2])
        assert sweep.s_values == [1, 2, 3]

    def test_rejects_empty_range(self, engine):
        with pytest.raises(ValidationError):
            engine.sweep([])

    def test_rejects_unknown_metric(self, engine):
        with pytest.raises(ValidationError):
            engine.sweep([1], metrics=("bogus",))


class TestPipelineReuse:
    def test_engine_path_matches_plain_pipeline(self, random_h):
        engine = QueryEngine(random_h)
        plain = SLinePipeline(metrics=("connected_components", "pagerank"))
        reused = SLinePipeline(
            metrics=("connected_components", "pagerank"), engine=engine
        )
        for s in (1, 2, 3, 4):
            expected = plain.run(random_h, s)
            served = reused.run(random_h, s)
            assert served.line_graph == expected.line_graph
            assert served.s == expected.s
            assert np.array_equal(
                served.squeeze_mapping.new_to_old, expected.squeeze_mapping.new_to_old
            )
            for name in expected.metrics:
                assert np.array_equal(served.metrics[name], expected.metrics[name])
            assert served.num_components() == expected.num_components()

    def test_engine_path_populates_cache(self, random_h):
        engine = QueryEngine(random_h)
        SLinePipeline(metrics=("lpcc",), engine=engine).run(random_h, 2)
        assert engine.stats().index_builds == 1
        assert np.array_equal(
            engine.metric(2, "lpcc"),
            SLinePipeline(metrics=("lpcc",)).run(random_h, 2).metrics["lpcc"],
        )

    def test_fingerprint_mismatch_rejected(self, random_h, paper_example_unlabelled):
        engine = QueryEngine(paper_example_unlabelled)
        with pytest.raises(ValidationError):
            SLinePipeline(engine=engine).run(random_h, 2)

    def test_engine_with_toplexes_rejected(self, engine):
        with pytest.raises(ValidationError):
            SLinePipeline(engine=engine, compute_toplexes=True)


class TestFiltrationDelegate:
    def test_oracle_delegates_to_index(self, engine, paper_example_unlabelled):
        for s in range(1, 5):
            assert line_graph_from_filtration(
                paper_example_unlabelled, s, index=engine.index
            ) == line_graph_from_filtration(paper_example_unlabelled, s)

    def test_oracle_rejects_mismatched_index(self, engine, random_h):
        with pytest.raises(ValueError):
            line_graph_from_filtration(random_h, 2, index=engine.index)


class TestCoauthorshipEngineGuard:
    def test_conflicting_hypergraph_and_engine_rejected(
        self, random_h, paper_example_unlabelled
    ):
        from repro.apps.authors import coauthorship_connectivity

        with pytest.raises(ValueError):
            coauthorship_connectivity(
                hypergraph=random_h,
                engine=QueryEngine(paper_example_unlabelled),
                s_values=(1, 2),
            )

    def test_matching_hypergraph_and_engine_allowed(self, paper_example_unlabelled):
        from repro.apps.authors import coauthorship_connectivity

        result = coauthorship_connectivity(
            hypergraph=paper_example_unlabelled,
            engine=QueryEngine(paper_example_unlabelled),
            s_values=(1, 2),
        )
        assert result.line_graph_sizes == {1: 4, 2: 3}
