"""Tests for the engine's LRU result cache."""

import pytest

from repro.engine.cache import LRUCache
from repro.utils.validation import ValidationError


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_returns_default(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("nope") is None
        assert cache.get("nope", 42) == 42
        assert cache.misses == 2

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" → "b" is now LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, no growth
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_contains_does_not_touch_recency(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache  # membership probe must not refresh "a"
        cache.put("c", 3)
        assert "a" not in cache
        assert cache.hits == 0 and cache.misses == 0

    def test_peek_returns_value_without_side_effects(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.hits == 0 and cache.misses == 0
        # Peeking must not refresh recency: "a" is still the LRU victim.
        cache.put("c", 3)
        assert "a" not in cache and "b" in cache

    def test_peek_missing_returns_default_without_counting(self):
        cache = LRUCache(maxsize=2)
        assert cache.peek("nope") is None
        assert cache.peek("nope", 42) == 42
        assert cache.misses == 0

    def test_rekey_moves_value(self):
        cache = LRUCache(maxsize=4)
        cache.put("old", 7)
        assert cache.rekey("old", "new") is True
        assert "old" not in cache
        assert cache.get("new") == 7
        assert cache.rekey("gone", "anywhere") is False

    def test_pop_and_clear(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        assert cache.pop("a") == 1
        assert cache.pop("a", "fallback") == "fallback"
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValidationError):
            LRUCache(maxsize=0)


class TestThreadSafety:
    def test_concurrent_mixed_operations_stay_consistent(self):
        """Hammer every operation from several threads: no exceptions, the
        size bound holds, and the counters add up."""
        import threading

        cache = LRUCache(maxsize=32)
        errors = []

        def worker(worker_id):
            try:
                for i in range(500):
                    key = (worker_id, i % 40)
                    cache.put(key, i)
                    # Keys are namespaced per worker, so a read returns a
                    # value this worker put under the key (any iteration of
                    # the 40-cycle) or None after an eviction/pop/rekey.
                    value = cache.get(key)
                    assert value is None or value % 40 == i % 40
                    cache.peek(key)
                    if i % 7 == 0:
                        cache.pop(key)
                    if i % 11 == 0:
                        cache.rekey(key, (worker_id, "moved", i % 40))
                    if i % 13 == 0:
                        for k in cache.keys():
                            cache.peek(k)
                    len(cache)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(cache) <= 32
        assert cache.hits + cache.misses == 6 * 500

    def test_eviction_bound_under_concurrent_puts(self):
        import threading

        cache = LRUCache(maxsize=8)

        def filler(base):
            for i in range(300):
                cache.put((base, i), i)

        threads = [threading.Thread(target=filler, args=(b,)) for b in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(cache) <= 8
        assert cache.evictions == 4 * 300 - len(cache)
