"""Tests for incremental maintenance of :class:`repro.engine.QueryEngine`.

The invariant throughout: after any sequence of ``add_hyperedge`` /
``remove_hyperedge`` calls, the engine serves exactly what a full rebuild
(a fresh engine over ``engine.hypergraph``) would serve, for every s.
"""

import numpy as np
import pytest

from repro.core.filtration import line_graph_from_filtration
from repro.engine.engine import QueryEngine
from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.utils.validation import ValidationError


def assert_matches_full_rebuild(engine, s_range=range(1, 7)):
    rebuilt = QueryEngine(engine.hypergraph)
    for s in s_range:
        served = engine.line_graph(s)
        fresh = rebuilt.line_graph(s)
        assert served == fresh, s
        assert np.array_equal(served.active_vertices, fresh.active_vertices), s
        assert served == line_graph_from_filtration(engine.hypergraph, s), s


@pytest.fixture
def engine(paper_example_unlabelled):
    engine = QueryEngine(paper_example_unlabelled)
    engine.sweep(range(1, 6))  # warm the index and cache
    return engine


class TestAddHyperedge:
    def test_returns_next_id(self, engine):
        assert engine.add_hyperedge([0, 3, 4]) == 4
        assert engine.hypergraph.num_edges == 5

    def test_matches_full_rebuild(self, engine):
        engine.add_hyperedge([0, 1, 2, 5])
        assert_matches_full_rebuild(engine)

    def test_duplicate_members_collapse(self, engine):
        engine.add_hyperedge([3, 3, 4, 4])
        assert engine.hypergraph.edge_size(4) == 2
        assert_matches_full_rebuild(engine)

    def test_new_vertices_grow_the_vertex_space(self, engine):
        engine.add_hyperedge([5, 6, 9])
        assert engine.hypergraph.num_vertices == 10
        assert_matches_full_rebuild(engine)

    def test_empty_hyperedge(self, engine):
        engine.add_hyperedge([])
        assert engine.hypergraph.edge_size(4) == 0
        assert_matches_full_rebuild(engine)

    def test_rejects_negative_vertices(self, engine):
        with pytest.raises(ValidationError):
            engine.add_hyperedge([-1, 2])

    def test_extends_labels(self, paper_example):
        engine = QueryEngine(paper_example)
        engine.line_graph(1)
        new_id = engine.add_hyperedge([0, 1], name="new-paper")
        assert engine.hypergraph.edge_name(new_id) == "new-paper"
        assert_matches_full_rebuild(engine)

    def test_update_before_index_build_defers_to_lazy_build(
        self, paper_example_unlabelled
    ):
        engine = QueryEngine(paper_example_unlabelled)
        engine.add_hyperedge([0, 1, 3])  # index not built yet
        assert engine.stats().index_builds == 0
        assert_matches_full_rebuild(engine)
        assert engine.stats().index_builds == 1


class TestRemoveHyperedge:
    def test_matches_full_rebuild(self, engine):
        engine.remove_hyperedge(2)
        assert_matches_full_rebuild(engine)

    def test_tombstone_preserves_ids(self, engine):
        engine.remove_hyperedge(0)
        assert engine.hypergraph.num_edges == 4
        assert engine.hypergraph.edge_size(0) == 0
        assert engine.line_graph(1).edge_set() == {(1, 2), (2, 3)}

    def test_removing_empty_edge_is_noop(self, engine):
        fp = engine.fingerprint()
        engine.remove_hyperedge(2)
        engine.remove_hyperedge(2)  # second removal: already a tombstone
        assert engine.stats().incremental_removes == 1
        assert engine.fingerprint() != fp

    def test_out_of_range_rejected(self, engine):
        with pytest.raises(ValidationError):
            engine.remove_hyperedge(4)
        with pytest.raises(ValidationError):
            engine.remove_hyperedge(-1)


class TestSelectiveInvalidation:
    def test_small_edge_add_retains_large_s_entries(self, engine):
        large_s_graph = engine.line_graph(3)
        engine.add_hyperedge([4, 5])  # size 2: cannot affect any s > 2
        stats = engine.stats()
        assert stats.retained_entries > 0
        assert stats.invalidated_entries > 0
        served = engine.line_graph(3)
        # Same arrays, rebased to the grown ID space — and still correct.
        assert served.edges is large_s_graph.edges
        assert served == QueryEngine(engine.hypergraph).line_graph(3)

    def test_small_edge_removal_retains_large_s_entries(self, engine):
        engine.line_graph(3)
        hits_before = engine.stats().cache_hits
        engine.remove_hyperedge(3)  # size 2: L_3 and L_4 untouched
        assert engine.stats().retained_entries > 0
        engine.line_graph(3)
        assert engine.stats().cache_hits == hits_before + 1

    def test_migration_does_not_inflate_traffic_stats(self, engine):
        """Re-keying bookkeeping uses peek: hit/miss counters reflect only
        genuine query traffic, never selective invalidation passes."""
        stats = engine.stats()
        hits, misses = stats.cache_hits, stats.cache_misses
        engine.add_hyperedge([4, 5])  # retains every s > 2 entry
        engine.remove_hyperedge(engine.hypergraph.num_edges - 1)
        stats = engine.stats()
        assert stats.retained_entries > 0
        assert stats.cache_hits == hits
        assert stats.cache_misses == misses

    def test_large_edge_add_invalidates_affected_s(self, engine):
        engine.add_hyperedge([0, 1, 2, 3, 4, 5])  # size 6 touches every cached s
        stats = engine.stats()
        assert stats.retained_entries == 0
        assert_matches_full_rebuild(engine)


class TestInterleavedUpdates:
    def test_mixed_sequence_with_queries_between(self):
        h = hypergraph_from_edge_lists(
            [[0, 1, 2], [1, 2, 3], [0, 1, 2, 3, 4], [4, 5], [2, 3, 5]],
            num_vertices=6,
        )
        engine = QueryEngine(h)
        engine.sweep(range(1, 6), metrics=("connected_components",))

        engine.add_hyperedge([0, 2, 4, 5])
        assert_matches_full_rebuild(engine)

        engine.remove_hyperedge(1)
        engine.metric(2, "connected_components")
        assert_matches_full_rebuild(engine)

        engine.add_hyperedge([1, 3])
        engine.remove_hyperedge(5)
        assert_matches_full_rebuild(engine)

        rebuilt = QueryEngine(engine.hypergraph)
        for s in range(1, 6):
            assert np.array_equal(
                engine.metric(s, "connected_components"),
                rebuilt.metric(s, "connected_components"),
            )
        stats = engine.stats()
        assert stats.incremental_adds == 2
        assert stats.incremental_removes == 2
        assert stats.index_builds == 1


class TestWeightOrderInvariant:
    def test_unsorted_overlap_row_keeps_weight_ascending_store(self):
        """Regression: an overlap row whose weights arrive descending must
        not corrupt the binary-search invariant (np.insert places values
        that land at the same position in given order)."""
        h = hypergraph_from_edge_lists([[]], num_vertices=1)
        engine = QueryEngine(h)
        engine.sweep(range(1, 5))
        # Third add overlaps edge 1 with weight 2 and edge 2 with weight 1:
        # a descending row inserted at one searchsorted position.
        for members in ([0, 1, 2], [0, 1], [0, 2]):
            engine.add_hyperedge(members)
            engine.line_graph(2)
        weights = engine.index.pairs_at_least(1)[1]
        assert np.all(np.diff(weights) >= 0)
        assert_matches_full_rebuild(engine, s_range=range(1, 5))
