"""Tests for :class:`repro.engine.OverlapIndex` — the weight-sorted pair store."""

import numpy as np
import pytest

from repro.core.dispatch import s_line_graph
from repro.engine.index import OverlapIndex, overlap_counts_for_members
from repro.utils.validation import ValidationError

from tests.conftest import PAPER_EXAMPLE_OVERLAPS, PAPER_EXAMPLE_SLINE_EDGES


@pytest.fixture
def index(paper_example_unlabelled):
    return OverlapIndex.build(paper_example_unlabelled)


class TestBuild:
    def test_stores_exact_overlap_pairs(self, index):
        expected = {pair: w for pair, w in PAPER_EXAMPLE_OVERLAPS.items() if w > 0}
        stored = {
            (int(i), int(j)): int(w)
            for (i, j), w in zip(*index.pairs_at_least(1))
        }
        assert stored == expected

    def test_weights_sorted_ascending(self, index):
        _, weights = index.pairs_at_least(1)
        assert np.all(np.diff(weights) >= 0)

    def test_shape_properties(self, index, paper_example_unlabelled):
        assert index.num_hyperedges == paper_example_unlabelled.num_edges
        assert index.num_pairs == 4
        assert index.max_weight == 3
        assert index.nbytes() > 0

    @pytest.mark.parametrize("algorithm", ["naive", "heuristic", "hashmap", "spgemm"])
    def test_algorithm_choice_is_equivalent(self, paper_example_unlabelled, algorithm):
        built = OverlapIndex.build(paper_example_unlabelled, algorithm=algorithm)
        for s in range(1, 5):
            assert built.line_graph(s) == s_line_graph(paper_example_unlabelled, s)

    def test_rejects_mismatched_weights(self):
        with pytest.raises(ValidationError):
            OverlapIndex(
                edges=np.array([[0, 1]]), weights=np.array([1, 2]), edge_sizes=np.array([2, 2])
            )

    def test_rejects_zero_weight(self):
        with pytest.raises(ValidationError):
            OverlapIndex(
                edges=np.array([[0, 1]]), weights=np.array([0]), edge_sizes=np.array([2, 2])
            )


class TestThresholdViews:
    @pytest.mark.parametrize("s", [1, 2, 3, 4])
    def test_line_graph_matches_figure_2(self, index, s):
        assert index.line_graph(s).edge_set() == PAPER_EXAMPLE_SLINE_EDGES[s]

    def test_edge_count_matches_slice(self, index):
        for s in range(1, 6):
            assert index.edge_count(s) == index.line_graph(s).num_edges

    def test_slice_is_a_view(self, index):
        edges, weights = index.pairs_at_least(2)
        assert edges.base is not None and weights.base is not None

    def test_active_vertices_follow_edge_sizes(self, index, paper_example_unlabelled):
        for s in range(1, 7):
            expected = np.flatnonzero(paper_example_unlabelled.edge_sizes() >= s)
            assert np.array_equal(index.active_vertices(s), expected)

    def test_s_above_max_weight_is_empty(self, index):
        graph = index.line_graph(index.max_weight + 1)
        assert graph.num_edges == 0

    def test_s_profile(self, index):
        assert index.s_profile() == {1: 4, 2: 3, 3: 2}


class TestIncrementalMaintenance:
    def test_add_hyperedge_requires_next_id(self, index):
        with pytest.raises(ValidationError):
            index.add_hyperedge(99, 2, np.array([0]), np.array([1]))

    def test_add_hyperedge_rejects_unknown_pair_ids(self, index):
        with pytest.raises(ValidationError):
            index.add_hyperedge(4, 2, np.array([17]), np.array([1]))

    def test_add_keeps_weight_order(self, index):
        index.add_hyperedge(4, 3, np.array([0, 2]), np.array([3, 1]))
        _, weights = index.pairs_at_least(1)
        assert np.all(np.diff(weights) >= 0)
        assert index.num_pairs == 6
        assert index.num_hyperedges == 5

    def test_remove_drops_incident_pairs(self, index):
        removed = index.remove_hyperedge(2)
        assert removed == 3  # pairs (0,2), (1,2), (2,3)
        assert index.line_graph(1).edge_set() == {(0, 1)}
        assert 2 not in index.active_vertices(1)

    def test_remove_out_of_range(self, index):
        with pytest.raises(ValidationError):
            index.remove_hyperedge(4)


class TestOverlapCountsForMembers:
    def test_counts_match_inc(self, paper_example_unlabelled):
        h = paper_example_unlabelled
        members = np.array([0, 3, 4], dtype=np.int64)
        ids, counts = overlap_counts_for_members(h, members)
        for e, c in zip(ids, counts):
            shared = np.intersect1d(members, h.edge_members(int(e)))
            assert int(c) == shared.size

    def test_out_of_range_vertices_are_ignored(self, paper_example_unlabelled):
        ids, counts = overlap_counts_for_members(
            paper_example_unlabelled, np.array([99, 100], dtype=np.int64)
        )
        assert ids.size == 0 and counts.size == 0

    def test_empty_members(self, paper_example_unlabelled):
        ids, counts = overlap_counts_for_members(
            paper_example_unlabelled, np.empty(0, dtype=np.int64)
        )
        assert ids.size == 0 and counts.size == 0
