"""Unit tests for s-centrality measures (validated against networkx on the line graph)."""

import networkx as nx
import pytest

from repro.core.dispatch import s_line_graph
from repro.smetrics.centrality import (
    s_betweenness_centrality,
    s_closeness_centrality,
    s_eccentricity,
    s_harmonic_centrality,
    s_pagerank,
)


def networkx_line_graph(h, s):
    """Independent construction of the s-line graph as a networkx graph."""
    g = nx.Graph()
    for i in range(h.num_edges):
        for j in range(i + 1, h.num_edges):
            if h.inc(i, j) >= s:
                g.add_edge(i, j)
    return g


class TestSBetweenness:
    def test_bridging_hyperedge_has_max_score(self, paper_example):
        scores = s_betweenness_centrality(paper_example, 1)
        # Hyperedge 3 ({a..e}) bridges {1, 2} and {4}: highest betweenness.
        assert max(scores, key=scores.get) == 2
        assert scores[3] == 0.0

    @pytest.mark.parametrize("s", [1, 2])
    def test_matches_networkx_on_community_hypergraph(self, community_hypergraph, s):
        ours = s_betweenness_centrality(community_hypergraph, s)
        oracle_graph = networkx_line_graph(community_hypergraph, s)
        theirs = nx.betweenness_centrality(oracle_graph, normalized=True)
        assert set(ours) == set(theirs)
        for edge_id, expected in theirs.items():
            assert ours[edge_id] == pytest.approx(expected, abs=1e-9)

    def test_keys_are_original_hyperedge_ids(self, paper_example):
        scores = s_betweenness_centrality(paper_example, 3)
        assert set(scores) == {0, 1, 2}

    def test_include_isolated(self, paper_example):
        scores = s_betweenness_centrality(paper_example, 2, include_isolated=True)
        assert scores[3] == 0.0


class TestOtherCentralities:
    def test_closeness_matches_networkx(self, community_hypergraph):
        ours = s_closeness_centrality(community_hypergraph, 2)
        oracle = networkx_line_graph(community_hypergraph, 2)
        theirs = nx.closeness_centrality(oracle)
        for edge_id, expected in theirs.items():
            assert ours[edge_id] == pytest.approx(expected, abs=1e-9)

    def test_harmonic_positive_on_connected_pairs(self, paper_example):
        scores = s_harmonic_centrality(paper_example, 2)
        assert all(v > 0 for v in scores.values())

    def test_eccentricity_values(self, paper_example):
        ecc = s_eccentricity(paper_example, 1)
        # Line graph at s=1: triangle {0,1,2} plus pendant 3 attached to 2.
        assert ecc[2] == 1.0
        assert ecc[3] == 2.0

    def test_pagerank_sums_to_one(self, community_hypergraph):
        scores = s_pagerank(community_hypergraph, 2)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_pagerank_reuses_line_graph(self, paper_example):
        lg = s_line_graph(paper_example, 1)
        direct = s_pagerank(paper_example, 1)
        reused = s_pagerank(paper_example, 1, line_graph=lg)
        assert direct == reused
