"""Unit tests for s-connected components."""

from repro.core.dispatch import s_line_graph
from repro.smetrics.connected import (
    num_s_connected_components,
    s_component_labels,
    s_connected_components,
)


class TestSComponentLabels:
    def test_paper_example_s1(self, paper_example):
        labels = s_component_labels(paper_example, 1)
        # All four hyperedges are 1-connected (Figure 2, s = 1).
        assert set(labels) == {0, 1, 2, 3}
        assert len(set(labels.values())) == 1

    def test_paper_example_s2_excludes_edge4(self, paper_example):
        labels = s_component_labels(paper_example, 2)
        assert set(labels) == {0, 1, 2}

    def test_include_isolated_adds_singletons(self, paper_example):
        labels = s_component_labels(paper_example, 2, include_isolated=True)
        # Edge 3 ({e, f}) has size 2 >= s, no s-incident partner: isolated singleton.
        assert set(labels) == {0, 1, 2, 3}
        assert len(set(labels.values())) == 2

    def test_reuse_precomputed_line_graph(self, paper_example):
        line_graph = s_line_graph(paper_example, 2)
        labels = s_component_labels(paper_example, 2, line_graph=line_graph)
        assert set(labels) == {0, 1, 2}


class TestSConnectedComponents:
    def test_sorted_by_size(self, community_hypergraph):
        comps = s_connected_components(community_hypergraph, 2)
        sizes = [len(c) for c in comps]
        assert sizes == sorted(sizes, reverse=True)

    def test_min_size_filter(self, paper_example):
        comps = s_connected_components(paper_example, 2, include_isolated=True, min_size=2)
        assert comps == [[0, 1, 2]]

    def test_components_partition_hyperedges(self, community_hypergraph):
        comps = s_connected_components(community_hypergraph, 2, include_isolated=True)
        flattened = [e for comp in comps for e in comp]
        assert len(flattened) == len(set(flattened))

    def test_members_are_pairwise_s_connected(self, paper_example):
        comps = s_connected_components(paper_example, 3)
        assert comps == [[0, 1, 2]]
        # Every member pair has an s-walk, i.e. the overlaps along it are >= 3.
        assert paper_example.inc(0, 2) >= 3 and paper_example.inc(1, 2) >= 3


class TestCount:
    def test_counts(self, paper_example):
        assert num_s_connected_components(paper_example, 1) == 1
        assert num_s_connected_components(paper_example, 2) == 1
        assert num_s_connected_components(paper_example, 5) == 0

    def test_count_with_isolated(self, paper_example):
        assert num_s_connected_components(paper_example, 2, include_isolated=True) == 2
