"""Unit tests for s-distance, s-diameter and spectral s-measures."""

import pytest

from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.smetrics.distance import s_diameter, s_distance
from repro.smetrics.spectral import (
    connectivity_profile,
    s_algebraic_connectivity,
    s_normalized_algebraic_connectivity,
)
from repro.utils.validation import ValidationError


class TestSDistance:
    def test_paper_example_distances(self, paper_example):
        # s = 1 line graph: triangle {0,1,2} with pendant 3 attached to 2.
        assert s_distance(paper_example, 0, 1, 1) == 1
        assert s_distance(paper_example, 0, 3, 1) == 2
        assert s_distance(paper_example, 2, 2, 1) == 0

    def test_disconnected_pair_returns_minus_one(self):
        h = hypergraph_from_edge_lists([[0, 1], [1, 2], [5, 6], [6, 7]])
        assert s_distance(h, 0, 2, 1) == -1

    def test_requires_both_edges_in_Es(self, paper_example):
        with pytest.raises(ValidationError):
            s_distance(paper_example, 0, 3, 3)  # edge 3 has size 2 < 3

    def test_s_diameter(self, paper_example):
        assert s_diameter(paper_example, 1) == 2
        assert s_diameter(paper_example, 2) == 1
        assert s_diameter(paper_example, 5) == 0


class TestSpectral:
    def test_triangle_connectivity(self, paper_example):
        # s = 2 line graph is a triangle (K3): normalized connectivity = 1.5.
        assert s_normalized_algebraic_connectivity(paper_example, 2) == pytest.approx(1.5)
        # Combinatorial algebraic connectivity of K3 is 3.
        assert s_algebraic_connectivity(paper_example, 2) == pytest.approx(3.0)

    def test_trivial_line_graph_gives_zero(self, paper_example):
        assert s_normalized_algebraic_connectivity(paper_example, 5) == 0.0

    def test_connectivity_profile_matches_per_s_calls(self, paper_example):
        profile = connectivity_profile(paper_example, [1, 2, 3])
        for s, value in profile.items():
            assert value == pytest.approx(
                s_normalized_algebraic_connectivity(paper_example, s)
            )

    def test_profile_unnormalized(self, paper_example):
        profile = connectivity_profile(paper_example, [2], normalized=False)
        assert profile[2] == pytest.approx(3.0)
