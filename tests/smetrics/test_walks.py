"""Unit tests for s-walk / s-path utilities."""

import pytest

from repro.hypergraph.builders import hypergraph_from_edge_lists
from repro.smetrics.walks import is_s_path, is_s_walk, s_reachable_set, shortest_s_path
from repro.utils.validation import ValidationError


class TestIsSWalk:
    def test_paper_example_walks(self, paper_example):
        # Edges 1-3-4 (0-indexed 0, 2, 3) form a 1-walk: inc(1,3)=3, inc(3,4)=1.
        assert is_s_walk(paper_example, [0, 2, 3], 1)
        assert not is_s_walk(paper_example, [0, 2, 3], 2)
        assert is_s_walk(paper_example, [0, 1, 2], 2)

    def test_trivial_walks(self, paper_example):
        assert is_s_walk(paper_example, [], 3)
        assert is_s_walk(paper_example, [2], 5)

    def test_unknown_edge_raises(self, paper_example):
        with pytest.raises(ValidationError):
            is_s_walk(paper_example, [0, 99], 1)

    def test_s_path_rejects_repeats(self, paper_example):
        assert is_s_path(paper_example, [0, 2, 1], 2)
        assert not is_s_path(paper_example, [0, 2, 0], 2)


class TestShortestSPath:
    def test_direct_and_two_hop_paths(self, paper_example):
        assert shortest_s_path(paper_example, 0, 1, 2) == [0, 1]
        path = shortest_s_path(paper_example, 0, 3, 1)
        assert path[0] == 0 and path[-1] == 3 and len(path) == 3
        assert is_s_path(paper_example, path, 1)

    def test_same_endpoints(self, paper_example):
        assert shortest_s_path(paper_example, 2, 2, 1) == [2]

    def test_disconnected_returns_none(self):
        h = hypergraph_from_edge_lists([[0, 1], [1, 2], [5, 6], [6, 7]])
        assert shortest_s_path(h, 0, 1, 1) == [0, 1]
        assert shortest_s_path(h, 0, 2, 1) is None
        assert shortest_s_path(h, 0, 3, 1) is None

    def test_endpoints_must_be_in_Es(self, paper_example):
        with pytest.raises(ValidationError):
            shortest_s_path(paper_example, 0, 3, 3)

    def test_every_hop_is_s_incident(self, community_hypergraph):
        # Pick two hyperedges in the same 2-connected component.
        from repro.smetrics.connected import s_connected_components

        comps = s_connected_components(community_hypergraph, 2, min_size=3)
        if not comps:
            pytest.skip("no suitable component in the fixture")
        src, dst = comps[0][0], comps[0][-1]
        path = shortest_s_path(community_hypergraph, src, dst, 2)
        assert path is not None
        assert is_s_path(community_hypergraph, path, 2)


class TestReachableSet:
    def test_paper_example(self, paper_example):
        assert s_reachable_set(paper_example, 0, 1) == [0, 1, 2, 3]
        assert s_reachable_set(paper_example, 0, 2) == [0, 1, 2]
        assert s_reachable_set(paper_example, 2, 4) == [2]

    def test_matches_component(self, community_hypergraph):
        from repro.smetrics.connected import s_connected_components

        comps = s_connected_components(community_hypergraph, 2, include_isolated=True)
        for comp in comps[:3]:
            assert s_reachable_set(community_hypergraph, comp[0], 2) == comp

    def test_requires_membership_in_Es(self, paper_example):
        with pytest.raises(ValidationError):
            s_reachable_set(paper_example, 3, 4)
