"""Engine-served s-measure endpoints (``engine=`` delegation)."""

import pytest

from repro.engine.engine import QueryEngine
from repro.smetrics.centrality import (
    s_betweenness_centrality,
    s_closeness_centrality,
    s_eccentricity,
    s_pagerank,
)
from repro.smetrics.connected import (
    num_s_connected_components,
    s_component_labels,
    s_connected_components,
)
from repro.utils.validation import ValidationError

MEASURES = [
    s_betweenness_centrality,
    s_closeness_centrality,
    s_eccentricity,
    s_pagerank,
]


class TestDelegation:
    @pytest.mark.parametrize("measure", MEASURES, ids=lambda m: m.__name__)
    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_engine_path_matches_direct_path(self, small_random_hypergraph, measure, s):
        engine = QueryEngine(small_random_hypergraph)
        assert measure(small_random_hypergraph, s, engine=engine) == pytest.approx(
            measure(small_random_hypergraph, s)
        )

    @pytest.mark.parametrize("s", [1, 2])
    def test_component_functions_match(self, small_random_hypergraph, s):
        engine = QueryEngine(small_random_hypergraph)
        assert s_component_labels(
            small_random_hypergraph, s, engine=engine
        ) == s_component_labels(
            small_random_hypergraph, s
        )
        assert s_connected_components(
            small_random_hypergraph, s, engine=engine
        ) == s_connected_components(small_random_hypergraph, s)
        assert num_s_connected_components(
            small_random_hypergraph, s, engine=engine
        ) == num_s_connected_components(small_random_hypergraph, s)

    def test_repeat_calls_hit_the_cache(self, small_random_hypergraph):
        engine = QueryEngine(small_random_hypergraph)
        s_pagerank(small_random_hypergraph, 2, engine=engine)
        hits_before = engine.stats().cache_hits
        s_pagerank(small_random_hypergraph, 2, engine=engine)
        assert engine.stats().cache_hits > hits_before

    def test_hypergraph_can_be_omitted(self, small_random_hypergraph):
        engine = QueryEngine(small_random_hypergraph)
        assert s_pagerank(None, 2, engine=engine) == pytest.approx(
            s_pagerank(small_random_hypergraph, 2)
        )


class TestGuardRails:
    def test_mismatched_hypergraph_raises(self, small_random_hypergraph, paper_example):
        engine = QueryEngine(paper_example)
        with pytest.raises(ValidationError, match="different hypergraph"):
            s_pagerank(small_random_hypergraph, 2, engine=engine)

    def test_non_default_parameters_raise(self, small_random_hypergraph):
        engine = QueryEngine(small_random_hypergraph)
        with pytest.raises(ValidationError, match="default"):
            s_betweenness_centrality(
                small_random_hypergraph, 2, normalized=False, engine=engine
            )
        with pytest.raises(ValidationError, match="default"):
            s_pagerank(small_random_hypergraph, 2, damping=0.5, engine=engine)
        with pytest.raises(ValidationError, match="default"):
            s_pagerank(small_random_hypergraph, 2, weighted=True, engine=engine)
        with pytest.raises(ValidationError, match="default"):
            s_closeness_centrality(
                small_random_hypergraph, 2, include_isolated=True, engine=engine
            )
        with pytest.raises(ValidationError, match="default"):
            s_component_labels(
                small_random_hypergraph, 2, include_isolated=True, engine=engine
            )
