"""End-to-end integration tests: datasets → pipeline → s-measures.

These exercise the public API the way the examples and benchmarks do, on
small instances of the surrogate datasets.
"""

import numpy as np
import pytest

import repro
from repro.core.pipeline import SLinePipeline
from repro.generators.datasets import load_dataset
from repro.parallel.executor import ParallelConfig


@pytest.fixture(scope="module")
def livejournal_small():
    return load_dataset("livejournal", scale=0.12, seed=0)


class TestPublicAPI:
    def test_package_exports(self):
        assert repro.__version__
        for name in ("Hypergraph", "SLineGraph", "s_line_graph", "SLinePipeline"):
            assert hasattr(repro, name)

    def test_quickstart_docstring_flow(self):
        h = repro.hypergraph_from_edge_dict(
            {
                1: ["a", "b", "c"],
                2: ["b", "c", "d"],
                3: ["a", "b", "c", "d", "e"],
                4: ["e", "f"],
            }
        )
        lg = repro.s_line_graph(h, s=2)
        assert sorted(lg.edge_set()) == [(0, 1), (0, 2), (1, 2)]

    def test_dataset_listing(self):
        assert "livejournal" in repro.available_datasets()


class TestPipelineOnDatasets:
    @pytest.mark.parametrize("algorithm", ["hashmap", "vectorized"])
    def test_full_framework_run(self, livejournal_small, algorithm):
        pipeline = SLinePipeline(
            algorithm=algorithm,
            relabel="ascending",
            metrics=("connected_components",),
        )
        result = pipeline.run(livejournal_small, s=8)
        assert result.num_line_graph_edges > 0
        assert result.num_components() >= 1
        assert result.stage_times.get("s_overlap") > 0.0

    def test_relabel_does_not_change_results(self, livejournal_small):
        base = SLinePipeline(relabel="none", metrics=()).run(livejournal_small, 8)
        asc = SLinePipeline(relabel="ascending", metrics=()).run(livejournal_small, 8)
        desc = SLinePipeline(relabel="descending", metrics=()).run(livejournal_small, 8)
        assert (
            base.line_graph.edge_set()
            == asc.line_graph.edge_set()
            == desc.line_graph.edge_set()
        )

    def test_smetrics_consistent_with_pipeline(self, livejournal_small):
        result = SLinePipeline(metrics=("connected_components",)).run(livejournal_small, 8)
        comps = repro.s_connected_components(livejournal_small, 8, include_isolated=False)
        flattened = sorted(e for comp in comps for e in comp if len(comp) >= 2)
        labels = result.metrics["connected_components"]
        # Hyperedges participating in non-singleton components must agree.
        mapping = result.squeeze_mapping
        in_pipeline = sorted(
            int(mapping.new_to_old[i])
            for i in range(labels.size)
            if np.count_nonzero(labels == labels[i]) >= 2
        )
        assert flattened == in_pipeline

    def test_clique_expansion_via_dual(self, livejournal_small):
        """The s-clique graph pathway (Section III-H): s = 1 on the dual."""
        dual = livejournal_small.dual()
        clique = repro.s_line_graph(dual, 1, algorithm="vectorized")
        # Every adjacent vertex pair co-occurs in at least one hyperedge.
        for i, j in list(clique.edge_set())[:50]:
            assert livejournal_small.adj(i, j) >= 1


class TestParallelConsistency:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backends_agree_with_serial(self, livejournal_small, backend):
        serial = repro.s_line_graph(livejournal_small, 8, algorithm="hashmap")
        parallel = repro.s_line_graph(
            livejournal_small,
            8,
            algorithm="hashmap",
            config=ParallelConfig(num_workers=4, strategy="cyclic", backend=backend),
        )
        assert serial == parallel

    def test_workload_totals_independent_of_partitioning(self, livejournal_small):
        _, blocked = repro.s_line_graph(
            livejournal_small, 8,
            config=ParallelConfig(num_workers=8, strategy="blocked"),
            return_workload=True,
        )
        _, cyclic = repro.s_line_graph(
            livejournal_small, 8,
            config=ParallelConfig(num_workers=8, strategy="cyclic"),
            return_workload=True,
        )
        assert blocked.total_wedges() == cyclic.total_wedges()
        assert blocked.num_workers == cyclic.num_workers == 8

    def test_variant_runs_agree_across_all_twelve(self, livejournal_small):
        results = {
            name: repro.run_variant(livejournal_small, 8, name, num_workers=2)
            for name in repro.ALL_VARIANTS
        }
        reference = results["1CN"].graph.edge_set()
        for name, result in results.items():
            assert result.graph.edge_set() == reference, name
