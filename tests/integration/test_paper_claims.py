"""Integration tests asserting the paper's qualitative claims on surrogate data.

Each test corresponds to a statement in the paper's evaluation or
applications sections; EXPERIMENTS.md cross-references them.
"""

import pytest

import repro
from repro.core.algorithms.hashmap import s_line_graph_hashmap
from repro.core.algorithms.heuristic import s_line_graph_heuristic
from repro.generators.datasets import load_dataset


@pytest.fixture(scope="module")
def livejournal():
    return load_dataset("livejournal", scale=0.2, seed=0)


class TestTable1Claims:
    """Table I: the hashmap method performs zero set intersections."""

    def test_hashmap_has_zero_set_intersections(self, livejournal):
        result = s_line_graph_hashmap(livejournal, 8)
        assert result.workload.total_set_intersections() == 0

    def test_heuristic_performs_many_set_intersections(self, livejournal):
        result = s_line_graph_heuristic(livejournal, 8)
        assert result.workload.total_set_intersections() > livejournal.num_edges

    def test_both_methods_agree(self, livejournal):
        a = s_line_graph_hashmap(livejournal, 8)
        b = s_line_graph_heuristic(livejournal, 8)
        assert a.graph.edge_set() == b.graph.edge_set()


class TestSectionIIIClaims:
    """Section III-I / Figure 4: s-clique graphs sparsify rapidly with s."""

    def test_s_clique_density_drops(self):
        from repro.generators.datasets import disgenet_surrogate

        h = disgenet_surrogate(num_genes=400, num_core_genes=80, seed=0)
        dual = h.dual()
        ensemble = repro.s_line_graph_ensemble(dual, [1, 2, 4, 8, 16])
        counts = ensemble.edge_counts()
        ordered = [counts[s] for s in sorted(counts)]
        assert ordered == sorted(ordered, reverse=True)
        assert counts[1] > 10 * counts[16]


class TestSection6Claims:
    """Section VI: skewed inputs benefit from relabel-by-degree load balance."""

    def test_relabelling_improves_balance_under_blocked_partitioning(self):
        # Construct a hypergraph whose high-degree hyperedges all have high IDs,
        # the adversarial case for blocked partitioning without relabelling.
        from repro.hypergraph.builders import hypergraph_from_edge_lists

        lists = [[i % 20] for i in range(60)] + [list(range(40)) for _ in range(6)]
        h = hypergraph_from_edge_lists(lists, num_vertices=40)
        no_relabel = repro.run_variant(h, 2, "2BN", num_workers=4)
        relabelled = repro.run_variant(h, 2, "2BA", num_workers=4)
        assert relabelled.workload.imbalance() <= no_relabel.workload.imbalance()

    def test_cyclic_beats_blocked_balance_without_relabel(self, livejournal):
        blocked = repro.run_variant(livejournal, 8, "2BN", num_workers=8)
        cyclic = repro.run_variant(livejournal, 8, "2CN", num_workers=8)
        # The paper's Figure 10: cyclic distribution balances skewed inputs better.
        assert cyclic.workload.imbalance() <= blocked.workload.imbalance() * 1.10


class TestTable5Claims:
    """Table V: s = 8 line graphs are far smaller than the s = 1 clique expansions."""

    def test_s8_much_smaller_than_s1(self, livejournal):
        ensemble = repro.s_line_graph_ensemble(livejournal, [1, 8])
        counts = ensemble.edge_counts()
        assert counts[8] < counts[1]
        assert counts[8] > 0
