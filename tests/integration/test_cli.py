"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.generators.datasets import available_datasets
from repro.io.edgelist import write_hyperedge_list
from repro.hypergraph.builders import hypergraph_from_edge_lists


@pytest.fixture
def hyperedge_file(tmp_path, paper_example_unlabelled):
    path = tmp_path / "example.hel"
    write_hyperedge_list(paper_example_unlabelled, path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        extra_args = {
            "slinegraph": ["--s", "2"],
            "components": ["--s", "2"],
            "centrality": ["--s", "2"],
            "query": ["--s", "2"],
            "sweep": ["--s-max", "4"],
        }
        for command in (
            "datasets", "stats", "slinegraph", "components",
            "centrality", "variants", "query", "sweep",
        ):
            args = parser.parse_args([command] + extra_args.get(command, []))
            assert args.command == command


class TestCommands:
    def test_datasets_lists_all(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(available_datasets())

    def test_stats_on_file(self, hyperedge_file, capsys):
        assert main(["stats", "--input", hyperedge_file]) == 0
        assert "|E|=" in capsys.readouterr().out

    def test_stats_on_dataset(self, capsys):
        assert main(["stats", "--dataset", "email-euall", "--scale", "0.1"]) == 0
        assert "|V|=" in capsys.readouterr().out

    def test_stats_requires_an_input(self):
        with pytest.raises(SystemExit):
            main(["stats"])

    def test_stats_rejects_both_inputs(self, hyperedge_file):
        with pytest.raises(SystemExit):
            main(["stats", "--input", hyperedge_file, "--dataset", "email-euall"])

    def test_slinegraph_to_stdout(self, hyperedge_file, capsys):
        assert main(["slinegraph", "--input", hyperedge_file, "--s", "2"]) == 0
        lines = [ln for ln in capsys.readouterr().out.splitlines() if ln.strip()]
        # Figure 2, s=2: three edges with their overlap counts.
        assert sorted(lines) == ["0 1 2", "0 2 3", "1 2 3"]

    def test_slinegraph_to_file(self, hyperedge_file, tmp_path, capsys):
        out_path = tmp_path / "lg.txt"
        assert main(
            ["slinegraph", "--input", hyperedge_file, "--s", "1", "--output", str(out_path)]
        ) == 0
        content = out_path.read_text().splitlines()
        assert content[0].startswith("#")
        assert len(content) == 1 + 4  # header + four s=1 edges

    def test_components(self, hyperedge_file, capsys):
        assert main(["components", "--input", hyperedge_file, "--s", "2"]) == 0
        out = capsys.readouterr().out
        assert "s-connected components" in out
        assert "size=3" in out

    def test_centrality(self, hyperedge_file, capsys):
        assert main(
            [
                "centrality",
                "--input",
                hyperedge_file,
                "--s",
                "1",
                "--measure",
                "betweenness",
                "--top",
                "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "betweenness" in out

    def test_variants_on_small_dataset(self, capsys):
        assert main(
            [
                "variants",
                "--dataset",
                "email-euall",
                "--scale",
                "0.1",
                "--s",
                "2",
                "--workers",
                "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "1CN" in out and "2BA" in out

    def test_query(self, hyperedge_file, capsys):
        assert main(
            [
                "query",
                "--input",
                hyperedge_file,
                "--s",
                "2",
                "--metric",
                "pagerank",
                "--top",
                "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "L_2: 3 edges" in out
        assert "top 2 hyperedges by pagerank" in out

    def test_query_reports_index_stats(self, hyperedge_file, capsys):
        assert main(["query", "--input", hyperedge_file, "--s", "1"]) == 0
        out = capsys.readouterr().out
        # Paper example: four weighted overlap pairs, largest overlap is 3.
        assert "4 weighted pairs" in out
        assert "max s = 3" in out

    def test_sweep(self, hyperedge_file, capsys):
        assert main(
            ["sweep", "--input", hyperedge_file, "--s-min", "1", "--s-max", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "sweep s=1..4" in out
        assert "components" in out
        # Figure 2 edge counts per s: 4, 3, 2, 0.
        rows = [ln.split() for ln in out.splitlines() if ln and ln[0].isdigit()]
        assert [int(row[2]) for row in rows] == [4, 3, 2, 0]

    def test_sweep_without_metrics(self, hyperedge_file, capsys):
        assert main(
            ["sweep", "--input", hyperedge_file, "--s-max", "3", "--metrics", ""]
        ) == 0
        out = capsys.readouterr().out
        assert "components" not in out


class TestIndexCommands:
    @pytest.fixture
    def store_dir(self, hyperedge_file, tmp_path, capsys):
        path = str(tmp_path / "idx")
        assert main(
            ["index", "build", "--input", hyperedge_file, "--path", path, "--shards", "2"]
        ) == 0
        capsys.readouterr()
        return path

    def test_index_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["index"])

    def test_build_reports_snapshot(self, hyperedge_file, tmp_path, capsys):
        path = str(tmp_path / "idx")
        assert main(["index", "build", "--input", hyperedge_file, "--path", path]) == 0
        out = capsys.readouterr().out
        # Paper example: 4 weighted pairs over 4 hyperedges, max overlap 3.
        assert "4 pairs over 4 hyperedges" in out
        assert "max s = 3" in out

    def test_info(self, store_dir, capsys):
        assert main(["index", "info", "--path", store_dir]) == 0
        out = capsys.readouterr().out
        fields = dict(
            line.split(None, 1) for line in out.splitlines() if line.strip()
        )
        assert fields["format_version"] == "1"
        assert fields["num_pairs"] == "4"
        assert fields["num_shards"] == "2"
        assert fields["wal_records"] == "0"
        assert fields["has_hypergraph"] == "True"

    def test_query_warm_serves(self, store_dir, capsys):
        assert main(
            ["index", "query", "--path", store_dir, "--s", "2", "--metric", "pagerank"]
        ) == 0
        out = capsys.readouterr().out
        assert "L_2: 3 edges" in out
        assert "top" in out

    def test_query_sharded(self, store_dir, capsys):
        assert main(
            ["index", "query", "--path", store_dir, "--s", "2", "--sharded"]
        ) == 0
        assert "sharded/mmap" in capsys.readouterr().out

    def test_compact(self, store_dir, capsys):
        assert main(["index", "compact", "--path", store_dir]) == 0
        out = capsys.readouterr().out
        assert "compacted 0 WAL records into generation 1" in out


class TestIndexErrorPaths:
    """Failure modes of the ``index`` subcommands (only happy paths were
    covered before): missing store directory, fingerprint mismatch,
    corrupt manifest."""

    @pytest.fixture
    def store_dir(self, hyperedge_file, tmp_path, capsys):
        path = str(tmp_path / "idx")
        assert main(["index", "build", "--input", hyperedge_file, "--path", path]) == 0
        capsys.readouterr()
        return path

    def test_info_on_missing_store_dir(self, tmp_path):
        from repro.store import StoreFormatError

        with pytest.raises(StoreFormatError, match="no snapshot manifest"):
            main(["index", "info", "--path", str(tmp_path / "nowhere")])

    def test_query_on_missing_store_dir(self, tmp_path):
        from repro.store import StoreFormatError

        with pytest.raises(StoreFormatError, match="no snapshot manifest"):
            main(["index", "query", "--path", str(tmp_path / "nowhere"), "--s", "2"])

    def test_compact_on_missing_store_dir(self, tmp_path):
        from repro.store import StoreFormatError

        with pytest.raises(StoreFormatError, match="no snapshot manifest"):
            main(["index", "compact", "--path", str(tmp_path / "nowhere")])

    def test_query_detects_fingerprint_mismatch(self, store_dir):
        """A hypergraph swapped in behind the snapshot's back must be
        refused, not silently served with the stale index."""
        import os

        from repro.hypergraph.builders import hypergraph_from_edge_lists
        from repro.io.serialization import save_hypergraph_npz
        from repro.store import StoreError
        from repro.store.format import HYPERGRAPH_NAME

        other = hypergraph_from_edge_lists([[0, 1], [1, 2, 3]], num_vertices=4)
        save_hypergraph_npz(other, os.path.join(store_dir, HYPERGRAPH_NAME))
        with pytest.raises(StoreError, match="inconsistent"):
            main(["index", "query", "--path", store_dir, "--s", "2"])

    def test_corrupt_manifest_is_reported(self, store_dir, capsys):
        import os

        from repro.store import StoreFormatError
        from repro.store.format import MANIFEST_NAME

        with open(os.path.join(store_dir, MANIFEST_NAME), "w") as handle:
            handle.write("{not json")
        with pytest.raises(StoreFormatError, match="not valid JSON"):
            main(["index", "info", "--path", store_dir])

    def test_unsupported_format_version_is_reported(self, store_dir):
        import json
        import os

        from repro.store import StoreFormatError
        from repro.store.format import MANIFEST_NAME

        path = os.path.join(store_dir, MANIFEST_NAME)
        with open(path) as handle:
            manifest = json.load(handle)
        manifest["format_version"] = 99
        with open(path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(StoreFormatError, match="format version 99"):
            main(["index", "info", "--path", store_dir])


class TestServeCommand:
    @pytest.fixture
    def store_dir(self, hyperedge_file, tmp_path, capsys):
        path = str(tmp_path / "idx")
        assert main(["index", "build", "--input", hyperedge_file, "--path", path]) == 0
        capsys.readouterr()
        return path

    def test_serve_processes_a_request_file(self, store_dir, tmp_path, capsys):
        import json

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "\n".join(
                [
                    json.dumps({"op": "metric", "s": 2, "metric": "pagerank"}),
                    json.dumps({"op": "add", "members": [0, 1, 2], "wait": True}),
                    json.dumps({"op": "flush"}),
                    json.dumps({"op": "components", "s": 1}),
                    "not json",
                    json.dumps({"op": "stop"}),
                    json.dumps({"op": "components", "s": 1}),  # after stop: ignored
                ]
            )
            + "\n"
        )
        assert main(["serve", "--path", store_dir, "--requests", str(requests)]) == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert lines[0]["op"] == "ready" and not lines[0]["read_only"]
        assert lines[1]["values"]  # metric response
        assert lines[2]["edge_id"] == 4
        assert lines[3]["flushed"]
        assert lines[4]["count"] >= 1
        assert not lines[5]["ok"] and "bad JSON" in lines[5]["error"]
        assert lines[-1] == {"ok": True, "op": "stopped", "served": 4}

    def test_serve_read_only_rejects_updates(self, store_dir, tmp_path, capsys):
        import json

        requests = tmp_path / "requests.jsonl"
        requests.write_text(json.dumps({"op": "add", "members": [0, 1]}) + "\n")
        assert main(
            ["serve", "--path", store_dir, "--read-only", "--requests", str(requests)]
        ) == 0
        lines = [json.loads(l) for l in capsys.readouterr().out.splitlines()]
        assert lines[0]["read_only"]
        assert not lines[1]["ok"] and "read-only" in lines[1]["error"]
