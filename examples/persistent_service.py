#!/usr/bin/env python
"""A persistent s-query service: build once, reopen warm, survive crashes.

The lifecycle the store subsystem targets:

1. **first boot** — compute the overlap index once, persist it as a sharded
   snapshot (plus the source hypergraph) under ``--store``;
2. **every later boot** — open the snapshot via mmap in milliseconds and
   serve any s; no wedge enumeration ever runs again;
3. **live updates** — hyperedges arrive and retire; each is appended to the
   write-ahead log *before* being acknowledged, so an abrupt death loses
   nothing that was confirmed;
4. **crash recovery** — a torn half-written record at the log tail (the
   signature of dying mid-append) is detected by checksum and truncated;
5. **compaction** — the log is folded back into a fresh snapshot
   generation, keeping recovery fast.

Run:  python examples/persistent_service.py [--store DIR] [--dataset email-euall]
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

from repro.benchmarks.reporting import format_table
from repro.generators.datasets import available_datasets, load_dataset
from repro.store import IndexStore, PersistentQueryEngine
from repro.utils.rng import make_rng


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default=None, help="store directory (default: temp)")
    parser.add_argument("--dataset", default="email-euall", choices=available_datasets())
    parser.add_argument("--scale", type=float, default=0.6)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    store_dir = args.store or os.path.join(tempfile.mkdtemp(), "idx")

    # ------------------------------------------------------------------ #
    # 1. First boot: pay the counting pass once, persist everything.
    # ------------------------------------------------------------------ #
    h = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    start = time.perf_counter()
    engine = PersistentQueryEngine.build(h, store_dir, num_shards=8)
    built = time.perf_counter() - start
    m = engine.store.manifest
    print(
        f"[boot 1] built + persisted snapshot in {built:.4f}s: "
        f"{m.num_pairs} pairs, {len(m.shards)} shards, max s = {m.max_weight}"
    )

    # ------------------------------------------------------------------ #
    # 2. Every later boot: warm open (mmap), serve immediately.
    # ------------------------------------------------------------------ #
    start = time.perf_counter()
    warm = PersistentQueryEngine.open(store_dir, sharded=True)
    warm.sweep(range(1, 9), metrics=("connected_components",))
    print(
        f"[boot 2] warm open + s=1..8 sweep in {time.perf_counter() - start:.4f}s "
        f"({built / max(time.perf_counter() - start, 1e-9):.0f}x faster than boot 1; "
        f"index builds this boot: {warm.stats().index_builds})"
    )

    # ------------------------------------------------------------------ #
    # 3. Live updates, WAL-logged before acknowledgement.
    # ------------------------------------------------------------------ #
    rng = make_rng(args.seed)
    for _ in range(5):
        members = rng.choice(h.num_vertices, size=5, replace=False).tolist()
        warm.add_hyperedge(members)
    warm.remove_hyperedge(int(rng.integers(h.num_edges)))
    print(
        f"[updates] 6 updates acknowledged, WAL holds "
        f"{warm.store.num_wal_records()} records"
    )

    # ------------------------------------------------------------------ #
    # 4. Crash: die mid-append, then recover on the next open.
    # ------------------------------------------------------------------ #
    with open(warm.store.wal.path, "ab") as handle:
        handle.write(b'7\tdeadbeef\t{"op": "add", "edge_id"')  # torn record
    recovered = IndexStore.open(store_dir)
    print(
        f"[recovery] torn tail detected and truncated: "
        f"{recovered.num_wal_records()} acknowledged records survive "
        f"(torn={recovered.recovered_torn_tail})"
    )

    # ------------------------------------------------------------------ #
    # 5. Compact: fold the log into generation 1, reopen, serve.
    # ------------------------------------------------------------------ #
    start = time.perf_counter()
    recovered.compact()
    served = PersistentQueryEngine.open(store_dir, sharded=True)
    final = served.sweep(range(1, 9), metrics=("connected_components",))
    print(
        f"[compact] generation {served.store.manifest.generation}, WAL empty, "
        f"reopen + sweep in {time.perf_counter() - start:.4f}s"
    )
    rows = [
        [s, final.active_counts[s], final.edge_counts[s], final.num_components(s)]
        for s in final.s_values
    ]
    print(format_table(["s", "active", "edges", "components"], rows))


if __name__ == "__main__":
    main()
