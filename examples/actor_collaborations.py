#!/usr/bin/env python
"""Uncovering collaborations among actors (paper Section V-C).

Builds an actor–movie hypergraph (IMDB surrogate with the paper's planted
collaboration groups), computes the 100-line graph and reports the
100-connected components and the 100-betweenness centrality of their
members.  The paper finds a star-shaped component centred on Adoor Bhasi
(centrality 0.11, all partners 0) plus three actor pairs; the surrogate
reproduces the same structure.

Run:  python examples/actor_collaborations.py [--threshold 100] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro.apps.actors import find_collaborations
from repro.generators.datasets import imdb_surrogate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold", type=int, default=100,
        help="collaboration threshold s (minimum number of shared movies)",
    )
    parser.add_argument("--actors", type=int, default=600, help="number of background actors")
    parser.add_argument("--seed", type=int, default=0, help="surrogate dataset seed")
    args = parser.parse_args()

    hypergraph = imdb_surrogate(num_background_actors=args.actors, seed=args.seed)
    print(
        f"Actor-movie hypergraph: {hypergraph.num_edges} actors over "
        f"{hypergraph.num_vertices} movies"
    )

    result = find_collaborations(hypergraph, s=args.threshold)

    print(f"\n(compute {args.threshold}-line graph)  "
          f"{result.times.get('s_line_graph') * 1e3:.1f} ms, "
          f"{result.line_graph_edges} edges")
    print(f"(compute s-connected components)  "
          f"{result.times.get('s_connected_components') * 1e3:.1f} ms")
    print(f"Here are the {args.threshold}-connected components:")
    for component in result.components:
        print("  [" + ", ".join(component) + "]")

    print(f"\n(compute s-betweenness centrality)  "
          f"{result.times.get('s_betweenness') * 1e3:.1f} ms")
    if result.central_actors:
        for actor, score in result.central_actors.items():
            print(f"  {actor}({score:.4f})")
    else:
        print("  no actor has a non-zero centrality score")

    print(
        f"\nMost central actor: {result.most_central_actor()} "
        "(the paper identifies Adoor Bhasi as the centre of a star component)"
    )
    print(f"Total analysis time: {result.times.total * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
