#!/usr/bin/env python
"""Ranking diseases with PageRank on s-clique graphs (paper Section III-I / Table II).

Builds a disease–gene hypergraph (disGeNet surrogate: genes as hyperedges,
diseases as vertices), links diseases that share at least s associated genes
(the s-clique graph = s-line graph of the dual hypergraph) and ranks the
diseases by PageRank.  The paper's point: the top-ranked diseases and their
score percentiles are nearly identical for s = 1, 10 and 100 even though the
s = 100 graph has two orders of magnitude fewer edges.

Run:  python examples/disease_ranking.py [--seed 0]
"""

from __future__ import annotations

import argparse

from repro.apps.diseases import rank_diseases
from repro.generators.datasets import disgenet_surrogate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--genes", type=int, default=1400, help="number of genes (hyperedges)")
    parser.add_argument("--seed", type=int, default=0, help="surrogate dataset seed")
    parser.add_argument("--top", type=int, default=5, help="top-k diseases to tabulate")
    args = parser.parse_args()

    hypergraph = disgenet_surrogate(num_genes=args.genes, seed=args.seed)
    print(
        f"Disease-gene hypergraph: {hypergraph.num_vertices} diseases, "
        f"{hypergraph.num_edges} genes"
    )

    result = rank_diseases(hypergraph, s_values=(1, 10, 100), top_k=args.top)

    print("\ns-clique graph sizes (Table II reports 2.7M / 246K / 12K for the real data):")
    for s in result.s_values:
        print(f"  s={s:<4d}: {result.edge_counts[s]} edges")

    print(f"\nTop-{args.top} diseases by PageRank (rank / score percentile), per s:")
    header = f"{'Disease':<36s}" + "".join(f"   s={s:<8d}" for s in result.s_values)
    print(header)
    reference = [name for name, _, _ in result.top_ranked[1]]
    for name in reference:
        row = f"{name:<36s}"
        for s in result.s_values:
            rank = result.full_rankings[s].get(name)
            pct = next((p for n, _, p in result.top_ranked[s] if n == name), None)
            if rank is None:
                row += "   (absent)  "
            elif pct is None:
                row += f"   {rank:<3d}        "
            else:
                row += f"   {rank:<3d}({pct:5.1f}%)"
        print(row)

    stable_10 = result.overlap_of_top_k(1, 10, args.top)
    stable_100 = result.overlap_of_top_k(1, 100, args.top)
    print(
        f"\nTop-{args.top} stability: {stable_10:.0%} retained at s=10, "
        f"{stable_100:.0%} retained at s=100 "
        f"(with {result.edge_counts[1] / max(result.edge_counts[100], 1):.0f}x fewer edges)"
    )


if __name__ == "__main__":
    main()
