#!/usr/bin/env python
"""Remote serving: a writer socket server, a replica server, N remote clients.

PR 3's concurrent topology (one writer, many hot-reloading readers, one
shared store directory) goes on the network: every query and update in
this example crosses a TCP socket speaking the length-prefixed JSON
protocol of :mod:`repro.service.transport`.

1. **build** — persist the overlap index of a surrogate dataset once;
2. **writer server** (this process) — a :class:`repro.service.QueryService`
   holding the single-writer lock, fronted by a
   :class:`~repro.service.SocketServer`; updates arrive through a
   :class:`~repro.service.ServiceClient` with ``wait=True``, so every
   acknowledged add/remove is already fsynced (durability acks over the
   wire);
3. **replica server** — a separate OS process running
   ``python -m repro serve --read-only --listen`` against the same store
   directory: a hot-reloading read replica behind its own socket;
4. **reader clients** — ``N`` independent OS processes, each driving
   s-centrality and s-component queries against the replica server purely
   over TCP;
5. **verification** — after every phase (snapshot, batched updates,
   compaction-triggered hot reload) each reader's served values must be
   byte-identical to the :class:`repro.core.pipeline.SLinePipeline` oracle
   run on the writer's current hypergraph.

Run:  python examples/remote_service.py [--readers 3] [--updates 40]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import subprocess
import sys
import tempfile
import time

from repro.core.pipeline import SLinePipeline
from repro.generators.datasets import available_datasets, load_dataset
from repro.service import QueryService, ServiceClient, SocketServer
from repro.store import IndexStore
from repro.utils.rng import make_rng

#: (op kind, s) queries every reader serves in every phase.
QUERIES = (("pagerank", 2), ("components", 1), ("components", 2))


def oracle_answers(h) -> dict:
    """The single-process five-stage pipeline, serialised like the wire."""
    answers = {}
    for kind, s in QUERIES:
        if kind == "components":
            pipeline = SLinePipeline(metrics=("connected_components",))
            answers[f"components/{s}"] = pipeline.run(h, s).num_components()
        else:
            pipeline = SLinePipeline(
                metrics=(kind,), drop_empty_edges=False, drop_isolated_vertices=False
            )
            values = pipeline.run(h, s).metric_by_hyperedge(kind)
            answers[f"{kind}/{s}"] = json.dumps(
                {str(k): float(v) for k, v in values.items()}, sort_keys=True
            )
    return answers


def reader_client(address, reader_id, commands, results) -> None:
    """One remote reader: serve query phases over TCP until told to stop."""
    host, port = address
    with ServiceClient(host, port) as client:
        while True:
            command = commands.get()
            if command == "stop":
                break
            answers = {}
            for kind, s in QUERIES:
                if kind == "components":
                    answers[f"components/{s}"] = client.components(s)
                else:
                    response = client.request({"op": "metric", "s": s, "metric": kind})
                    answers[f"{kind}/{s}"] = json.dumps(
                        response["values"], sort_keys=True
                    )
            results.put((reader_id, command, answers, client.generation()))


def wait_for_convergence(client: ServiceClient, fingerprint: str, timeout=30.0) -> None:
    """Poll a replica server until it serves the writer's current state."""
    deadline = time.monotonic() + timeout
    while client.fingerprint() != fingerprint:
        if time.monotonic() > deadline:
            raise RuntimeError("replica did not converge to the writer's state")
        time.sleep(0.05)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default=None, help="store directory (default: temp)")
    parser.add_argument("--dataset", default="email-euall", choices=available_datasets())
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--readers", type=int, default=3)
    parser.add_argument("--updates", type=int, default=40)
    args = parser.parse_args()
    store_path = args.store or os.path.join(tempfile.mkdtemp(), "idx")

    # 1. Build the shared store.
    h = load_dataset(args.dataset, scale=args.scale, seed=0)
    IndexStore.build(h, store_path, num_shards=8)
    print(f"store built at {store_path}: {h.num_edges} hyperedges")

    # 2. Writer service + socket server (this process).
    writer = QueryService(store_path, max_batch=32)
    writer_server = SocketServer(writer, port=0).start()
    print(f"writer serving on {writer_server.host}:{writer_server.port}")

    # 3. Replica server: a separate OS process behind its own socket.
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    replica_proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--path", store_path,
            "--read-only", "--listen", "127.0.0.1:0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
        bufsize=1,
    )
    listening = json.loads(replica_proc.stdout.readline())
    replica_address = (listening["host"], listening["port"])
    print(f"replica serving on {replica_address[0]}:{replica_address[1]}")

    # 4. Remote reader clients (separate OS processes, TCP only).
    ctx = mp.get_context("spawn")
    results = ctx.Queue()
    commands = [ctx.Queue() for _ in range(args.readers)]
    readers = [
        ctx.Process(target=reader_client, args=(replica_address, i, commands[i], results))
        for i in range(args.readers)
    ]
    for proc in readers:
        proc.start()

    def run_phase(phase: str) -> None:
        expected = oracle_answers(writer.engine.hypergraph)
        for queue in commands:
            queue.put(phase)
        for _ in readers:
            reader_id, observed_phase, answers, generation = results.get(timeout=120)
            assert observed_phase == phase
            ok = answers == expected
            print(
                f"  reader {reader_id}: generation {generation} -> "
                f"{'BYTE-IDENTICAL' if ok else 'MISMATCH'}"
            )
            assert ok, f"reader {reader_id} diverged in phase {phase}"

    try:
        with ServiceClient(*writer_server.address) as updater, ServiceClient(
            *replica_address
        ) as monitor:
            print("phase 1: snapshot")
            run_phase("snapshot")

            # Batched updates over the wire; each response is a durability ack.
            rng = make_rng(1)
            start = time.perf_counter()
            for i in range(args.updates):
                members = sorted(set(int(v) for v in rng.choice(h.num_vertices, size=5)))
                updater.add(members, wait=True)
                if i % 10 == 9:
                    updater.remove(int(rng.integers(h.num_edges)), wait=True)
            elapsed = time.perf_counter() - start
            stats = writer.admission_stats()
            print(
                f"phase 2: {stats.applied} durable updates over TCP in "
                f"{elapsed:.2f}s ({stats.batches} group commits)"
            )
            wait_for_convergence(monitor, writer.engine.fingerprint())
            run_phase("updated")

            # Compaction: replica hot-reloads the new generation mid-serve.
            generation = updater.compact()
            print(f"phase 3: compacted to generation {generation}")
            wait_for_convergence(monitor, writer.engine.fingerprint())
            run_phase("compacted")
    finally:
        for queue in commands:
            queue.put("stop")
        for proc in readers:
            proc.join(timeout=30)
        replica_proc.terminate()
        replica_proc.wait(timeout=30)
        replica_proc.stdout.close()
        writer_server.close()
        writer.close()
    print("writer and replica servers closed; all readers byte-identical")


if __name__ == "__main__":
    main()
