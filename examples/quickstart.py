#!/usr/bin/env python
"""Quickstart: build a hypergraph, compute s-line graphs, run s-measures.

Reproduces the paper's running example (Figure 1 / Figure 2): a hypergraph
on vertices a..f with four hyperedges, its s-line graphs for s = 1..4, and a
few s-measures computed through the five-stage framework.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Build the hypergraph of the paper's Figure 1.
    # ------------------------------------------------------------------ #
    h = repro.hypergraph_from_edge_dict(
        {
            1: ["a", "b", "c"],
            2: ["b", "c", "d"],
            3: ["a", "b", "c", "d", "e"],
            4: ["e", "f"],
        }
    )
    print("Hypergraph:", h)
    stats = repro.compute_stats(h)
    print(stats.as_table_row("figure-1 example"))

    # ------------------------------------------------------------------ #
    # 2. Compute the hyperedge s-line graphs for s = 1..4 (Figure 2).
    # ------------------------------------------------------------------ #
    print("\ns-line graphs (hyperedge IDs are 0-based):")
    ensemble = repro.s_line_graph_ensemble(h, [1, 2, 3, 4])
    for s, line_graph in ensemble.items():
        named_edges = [
            (h.edge_name(i), h.edge_name(j), int(w))
            for (i, j), w in line_graph.weight_map().items()
        ]
        print(f"  s={s}: {line_graph.num_edges} edges -> {named_edges}")

    # ------------------------------------------------------------------ #
    # 3. Individual s-line graph with a chosen algorithm + parallel config.
    # ------------------------------------------------------------------ #
    lg = repro.s_line_graph(
        h, s=2,
        algorithm="hashmap",
        config=repro.ParallelConfig(num_workers=2, strategy="cyclic", backend="thread"),
    )
    print("\ns=2 line graph edge set:", sorted(lg.edge_set()))

    # ------------------------------------------------------------------ #
    # 4. Run the five-stage framework end to end (Table I structure).
    # ------------------------------------------------------------------ #
    pipeline = repro.SLinePipeline(
        algorithm="hashmap",
        relabel="ascending",
        metrics=("connected_components", "betweenness"),
    )
    result = pipeline.run(h, s=2)
    print("\nPipeline stage times:", result.stage_times)
    print("Number of 2-connected components:", result.num_components())
    print(
        "2-betweenness by hyperedge:",
        {
            h.edge_name(e): round(v, 3)
            for e, v in result.metric_by_hyperedge("betweenness").items()
        },
    )

    # ------------------------------------------------------------------ #
    # 5. s-measures straight from the hypergraph.
    # ------------------------------------------------------------------ #
    print("\ns-connected components (s=1):", repro.s_connected_components(h, 1))
    print("s-distance between hyperedges 1 and 4 at s=1:", repro.s_distance(h, 0, 3, 1))
    print(
        "normalized algebraic connectivity of L_2:",
        round(repro.s_normalized_algebraic_connectivity(h, 2), 4),
    )

    # ------------------------------------------------------------------ #
    # 6. The dual view: s-clique graphs (clique expansion when s = 1).
    # ------------------------------------------------------------------ #
    clique_expansion = repro.s_line_graph(h.dual(), 1)
    print(
        "\nClique expansion (2-section) has",
        clique_expansion.num_edges,
        "edges over the", h.num_vertices, "vertices",
    )


if __name__ == "__main__":
    main()
