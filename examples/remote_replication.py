#!/usr/bin/env python
"""Multi-machine read replicas: a mirror bootstrapped purely over TCP.

PR 4's remote serving still required every replica to *see* the store
directory (a shared filesystem).  This example removes that: the replica
server mirrors the writer's store into its **own directory** using only
the socket protocol's replication ops (``repl_manifest`` /
``repl_fetch`` / ``repl_wal``) — the only channel between the two
"machines" is TCP.

1. **build** — persist the overlap index of a surrogate dataset once;
2. **writer server** (this process) — a :class:`repro.service.QueryService`
   holding the single-writer lock, fronted by a
   :class:`~repro.service.SocketServer`;
3. **remote replica server** — a separate OS process running
   ``python -m repro replicate --from HOST:PORT --store DIR --serve`` on a
   *different* store directory: it bootstraps the mirror over the wire,
   serves it, and keeps pulling deltas (WAL tails between compactions,
   changed-shards-only after one);
4. **verification** — after every phase (snapshot, durable updates, a
   compaction delta-sync) the replica's served values must be
   byte-identical to the :class:`repro.core.pipeline.SLinePipeline`
   oracle on the writer's current hypergraph;
5. **crash safety** — a sync killed mid-fetch (fault-injected) leaves a
   mirror that still serves its previous state and recovers cleanly on
   the next sync.

Run:  python examples/remote_replication.py [--updates 30]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

from repro.core.pipeline import SLinePipeline
from repro.generators.datasets import available_datasets, load_dataset
from repro.service import QueryService, ServiceClient, SocketServer
from repro.store import (
    IndexStore,
    LocalReplicationSource,
    PersistentQueryEngine,
    StoreMirror,
)
from repro.utils.rng import make_rng

QUERIES = (("pagerank", 2), ("components", 1), ("components", 2))


def oracle_answers(h) -> dict:
    """The single-process five-stage pipeline, serialised like the wire."""
    answers = {}
    for kind, s in QUERIES:
        if kind == "components":
            pipeline = SLinePipeline(metrics=("connected_components",))
            answers[f"components/{s}"] = pipeline.run(h, s).num_components()
        else:
            pipeline = SLinePipeline(
                metrics=(kind,), drop_empty_edges=False, drop_isolated_vertices=False
            )
            values = pipeline.run(h, s).metric_by_hyperedge(kind)
            answers[f"{kind}/{s}"] = json.dumps(
                {str(k): float(v) for k, v in values.items()}, sort_keys=True
            )
    return answers


def served_answers(client: ServiceClient) -> dict:
    answers = {}
    for kind, s in QUERIES:
        if kind == "components":
            answers[f"components/{s}"] = client.components(s)
        else:
            response = client.request({"op": "metric", "s": s, "metric": kind})
            answers[f"{kind}/{s}"] = json.dumps(response["values"], sort_keys=True)
    return answers


def wait_for(predicate, timeout=60.0, what="condition") -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise RuntimeError(f"timed out waiting for {what}")
        time.sleep(0.05)


class KilledSync(Exception):
    """Stands in for SIGKILL at an arbitrary point of a sync."""


class FlakySource:
    """Replication source that dies after a few fetch chunks."""

    def __init__(self, inner, fail_after):
        self._inner, self.fail_after, self.fetches = inner, fail_after, 0

    def repl_manifest(self):
        return self._inner.repl_manifest()

    def repl_wal(self, generation, after_seq):
        return self._inner.repl_wal(generation, after_seq)

    def repl_fetch(self, name, generation, offset, length):
        self.fetches += 1
        if self.fetches > self.fail_after:
            raise KilledSync()
        return self._inner.repl_fetch(name, generation, offset, length)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="email-euall", choices=available_datasets())
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--updates", type=int, default=30)
    args = parser.parse_args()
    workdir = tempfile.mkdtemp()
    store_path = os.path.join(workdir, "writer-store")
    mirror_path = os.path.join(workdir, "replica-mirror")  # a different "machine"

    # 1. Build the writer's store.
    h = load_dataset(args.dataset, scale=args.scale, seed=0)
    IndexStore.build(h, store_path, num_shards=8)
    print(f"writer store built at {store_path}: {h.num_edges} hyperedges")

    # 2. Writer service + socket server (this process).
    writer = QueryService(store_path, max_batch=32)
    writer_server = SocketServer(writer, port=0).start()
    print(f"writer serving on {writer_server.host}:{writer_server.port}")

    # 3. Remote replica: replicate --serve in its own process + directory.
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    replica_proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "replicate",
            "--from", f"{writer_server.host}:{writer_server.port}",
            "--store", mirror_path,
            "--serve", "127.0.0.1:0",
            "--poll-interval", "0.1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
        bufsize=1,
    )
    synced = json.loads(replica_proc.stdout.readline())
    print(
        f"mirror bootstrapped over TCP: generation {synced['generation']}, "
        f"{synced['fetched_files']} files / {synced['fetched_bytes']} bytes fetched"
    )
    listening = json.loads(replica_proc.stdout.readline())
    replica_address = (listening["host"], listening["port"])
    print(f"replica serving on {replica_address[0]}:{replica_address[1]}")

    def run_phase(phase: str, client: ServiceClient) -> None:
        expected = oracle_answers(writer.engine.hypergraph)
        observed = served_answers(client)
        ok = observed == expected
        print(
            f"  phase {phase!r}: generation {client.generation()} -> "
            f"{'BYTE-IDENTICAL' if ok else 'MISMATCH'}"
        )
        assert ok, f"replica diverged from the oracle in phase {phase}"

    try:
        with ServiceClient(*writer_server.address) as updater, ServiceClient(
            *replica_address
        ) as reader:
            print("phase 1: snapshot (no shared filesystem anywhere)")
            run_phase("snapshot", reader)

            # Durable updates over the wire; the mirror pulls WAL tails.
            rng = make_rng(1)
            start = time.perf_counter()
            for i in range(args.updates):
                members = sorted(set(int(v) for v in rng.choice(h.num_vertices, size=5)))
                updater.add(members, wait=True)
                if i % 10 == 9:
                    updater.remove(int(rng.integers(h.num_edges)), wait=True)
            elapsed = time.perf_counter() - start
            print(
                f"phase 2: {args.updates} durable updates over TCP in {elapsed:.2f}s; "
                "waiting for the mirror's WAL-tail delta sync"
            )
            fingerprint = writer.engine.fingerprint()
            wait_for(
                lambda: reader.fingerprint() == fingerprint,
                what="mirror to replay the WAL tail",
            )
            run_phase("updated", reader)

            # Compaction: the mirror delta-syncs the new generation (only
            # changed shards cross the wire) and hot-swaps it mid-serve.
            generation = updater.compact()
            print(f"phase 3: writer compacted to generation {generation}")
            wait_for(
                lambda: reader.generation() == generation,
                what="mirror to pull the compacted generation",
            )
            run_phase("compacted", reader)

        # 5. Crash safety: a sync killed mid-fetch, then a clean recovery.
        print("phase 4: killing a sync mid-fetch (fault-injected)")
        victim_path = os.path.join(workdir, "killed-mirror")
        source = LocalReplicationSource(store_path)
        try:
            StoreMirror(FlakySource(source, fail_after=3), victim_path).sync()
            raise RuntimeError("the fault injection did not fire")
        except KilledSync:
            pass
        assert not IndexStore.exists(victim_path)  # nothing half-installed
        StoreMirror(source, victim_path).sync()  # a fresh sync finishes the job
        killed_engine = PersistentQueryEngine.open(victim_path, read_only=True)
        assert killed_engine.fingerprint() == writer.engine.fingerprint()
        assert killed_engine.metric_by_hyperedge(
            2, "pagerank"
        ) == writer.engine.metric_by_hyperedge(2, "pagerank")
        print("  killed mirror recovered cleanly and serves oracle values")
    finally:
        replica_proc.terminate()
        replica_proc.wait(timeout=30)
        replica_proc.stdout.close()
        writer_server.close()
        writer.close()
    print("all phases byte-identical: multi-machine replication verified")


if __name__ == "__main__":
    main()
