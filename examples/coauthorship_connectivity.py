#!/usr/bin/env python
"""Revealing relationships among authors via spectral analysis (paper Section V-B).

Builds an author–paper hypergraph (condMat surrogate), computes the ensemble
of s-line graphs for s = 1..16 in a single counting pass (Algorithm 3) and
tracks the normalized algebraic connectivity of each — the quantity plotted
in the paper's Figure 6.  Decreasing values through s = 12 reveal sparse
collaboration; the sharp rise at s = 13 shows that authors who co-author 13+
papers form densely connected collectives.

Run:  python examples/coauthorship_connectivity.py [--papers 1600] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro.apps.authors import coauthorship_connectivity
from repro.generators.datasets import condmat_surrogate


def ascii_bar(value: float, scale: float = 40.0) -> str:
    """Render a value in [0, ~1.2] as a crude ASCII bar."""
    return "#" * max(1, int(value * scale)) if value > 0 else ""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--papers", type=int, default=1600, help="number of papers (hyperedges)"
    )
    parser.add_argument("--seed", type=int, default=0, help="surrogate dataset seed")
    parser.add_argument("--max-s", type=int, default=16, help="largest s to sweep")
    args = parser.parse_args()

    hypergraph = condmat_surrogate(num_papers=args.papers, seed=args.seed)
    print(
        f"Author-paper hypergraph: {hypergraph.num_edges} papers, "
        f"{hypergraph.num_vertices} authors, {hypergraph.num_incidences} authorships"
    )

    result = coauthorship_connectivity(hypergraph, s_values=range(1, args.max_s + 1))

    print("\nNormalized algebraic connectivity of the s-line graphs (Figure 6):")
    print(f"{'s':>3s}  {'edges':>7s}  {'lambda_2':>9s}")
    for s in result.s_values:
        value = result.connectivity[s]
        print(
            f"{s:>3d}  {result.line_graph_sizes[s]:>7d}  {value:>9.4f}  {ascii_bar(value)}"
        )

    rise = result.rises_at()
    print(
        f"\nSharp connectivity rise at s = {rise}: authors with at least {rise} joint "
        "papers form densely connected collaboration groups (paper: s = 13)."
    )


if __name__ == "__main__":
    main()
