#!/usr/bin/env python
"""A long-running s-query service on the overlap-index engine.

Simulates the production pattern the engine layer targets: one hypergraph,
heavy query traffic over many (s, metric) combinations, interleaved with
live updates.  The :class:`repro.engine.QueryEngine` computes the weighted
overlap structure once, serves every s as a binary-search threshold view,
caches results under (fingerprint, s, metric) keys, and patches the index
incrementally when hyperedges arrive or retire — invalidating only the
cache entries whose result could actually change.

Run:  python examples/query_service.py [--dataset email-euall] [--scale 0.4]
"""

from __future__ import annotations

import argparse
import time

from repro.benchmarks.reporting import format_table
from repro.engine.engine import QueryEngine
from repro.generators.datasets import available_datasets, load_dataset
from repro.utils.rng import make_rng


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="email-euall", choices=available_datasets())
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--queries", type=int, default=200, help="random queries to serve")
    args = parser.parse_args()

    h = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    engine = QueryEngine(h)
    rng = make_rng(args.seed)

    # ------------------------------------------------------------------ #
    # Cold start: build the overlap index once.
    # ------------------------------------------------------------------ #
    start = time.perf_counter()
    index = engine.index
    print(
        f"index built in {time.perf_counter() - start:.4f}s: "
        f"{index.num_pairs} weighted pairs, max s = {index.max_weight}, "
        f"{index.nbytes() / 1024:.1f} KiB"
    )

    # ------------------------------------------------------------------ #
    # Serve a random query mix (the paper's Stage-5 metrics at varied s).
    # ------------------------------------------------------------------ #
    metric_names = ("connected_components", "lpcc", "pagerank")
    s_pool = list(range(1, max(2, index.max_weight + 1)))
    start = time.perf_counter()
    for _ in range(args.queries):
        s = int(rng.choice(s_pool))
        engine.metric(s, metric_names[int(rng.integers(len(metric_names)))])
    elapsed = time.perf_counter() - start
    stats = engine.stats()
    print(
        f"served {args.queries} queries in {elapsed:.4f}s "
        f"({args.queries / elapsed:.0f} q/s, hit rate {stats.hit_rate():.0%})"
    )

    # ------------------------------------------------------------------ #
    # Live updates: hyperedges arrive and retire; only affected s change.
    # ------------------------------------------------------------------ #
    members = rng.choice(h.num_vertices, size=5, replace=False).tolist()
    new_id = engine.add_hyperedge(members)
    engine.remove_hyperedge(int(rng.integers(h.num_edges)))
    stats = engine.stats()
    print(
        f"applied 2 updates (new hyperedge {new_id}): "
        f"{stats.invalidated_entries} cache entries invalidated, "
        f"{stats.retained_entries} retained, index rebuilt "
        f"{stats.index_builds} time(s)"
    )

    # ------------------------------------------------------------------ #
    # Post-update sweep: still one index, no recount.
    # ------------------------------------------------------------------ #
    sweep = engine.sweep(range(1, 9), metrics=("connected_components",))
    rows = [
        [s, sweep.active_counts[s], sweep.edge_counts[s], sweep.num_components(s)]
        for s in sweep.s_values
    ]
    print(format_table(["s", "active", "edges", "components"], rows))
    print(f"post-update sweep served in {sweep.elapsed_seconds:.4f}s")


if __name__ == "__main__":
    main()
