#!/usr/bin/env python
"""One writer, N reader processes, one shared store — the serving layer.

This example stands up the concurrent topology the service subsystem
targets:

1. **build** — persist the overlap index of a surrogate dataset once;
2. **writer process** (this process) — a :class:`repro.service.QueryService`
   holding the single-writer lock, admitting a stream of hyperedge updates
   through the async batched :class:`~repro.service.AdmissionQueue`
   (one WAL fsync per coalesced batch, futures as durability acks) with a
   :class:`~repro.service.CompactionPolicy` folding the log in the
   background;
3. **reader processes** — ``N`` independent OS processes, each serving
   s-metric queries from a hot-reloading
   :class:`~repro.service.ReadReplica`; they observe the writer's batches
   and compactions purely through the store directory (change-token
   polling), no IPC;
4. **verification** — every reader's final answers are compared against a
   from-scratch engine on the writer's final hypergraph.

Run:  python examples/concurrent_service.py [--readers 3] [--updates 60]
"""

from __future__ import annotations

import argparse
import multiprocessing as mp
import os
import tempfile
import time

from repro.generators.datasets import available_datasets, load_dataset
from repro.service import CompactionPolicy, QueryService, ReadReplica, StoreLock
from repro.store import IndexStore
from repro.utils.rng import make_rng


def reader_process(store_path: str, reader_id: int, ready, stop_flag, results) -> None:
    """Serve queries until told to stop; report the final served state."""
    replica = ReadReplica(store_path)
    ready.wait()  # writer starts streaming once every replica is up
    queries = 0
    while not stop_flag.is_set():
        replica.metric(2, "connected_components")
        replica.line_graph(3)
        queries += 1
    # Final consistent read after the writer went quiet.
    replica.refresh()
    results[reader_id] = {
        "queries": queries,
        "reloads": replica.reloads,
        "generation": replica.generation,
        "fingerprint": replica.fingerprint(),
        "pagerank": replica.metric_by_hyperedge(2, "pagerank"),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default=None, help="store directory (default: temp)")
    parser.add_argument("--dataset", default="email-euall", choices=available_datasets())
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--readers", type=int, default=3)
    parser.add_argument("--updates", type=int, default=60)
    args = parser.parse_args()
    store_path = args.store or os.path.join(tempfile.mkdtemp(), "idx")

    # 1. Build the shared store.
    h = load_dataset(args.dataset, scale=args.scale, seed=0)
    IndexStore.build(h, store_path, num_shards=8)
    print(f"store built at {store_path}: {h.num_edges} hyperedges")

    # 2. Start the reader fleet (separate OS processes).
    ctx = mp.get_context("spawn")
    ready = ctx.Barrier(args.readers + 1)
    stop_flag = ctx.Event()
    results = ctx.Manager().dict()
    readers = [
        ctx.Process(
            target=reader_process, args=(store_path, i, ready, stop_flag, results)
        )
        for i in range(args.readers)
    ]
    for proc in readers:
        proc.start()

    # 3. The writer: async admission + background compaction.
    policy = CompactionPolicy(max_wal_records=25, max_wal_bytes=None)
    rng = make_rng(1)
    with QueryService(
        store_path, compaction=policy, compaction_poll_interval=0.05, max_batch=32
    ) as writer:
        print(f"writer holds {StoreLock(store_path).holder()}")
        ready.wait()  # every reader replica is open and serving
        start = time.perf_counter()
        futures = []
        for i in range(args.updates):
            members = sorted(
                set(int(v) for v in rng.choice(h.num_vertices, size=5))
            )
            futures.append(writer.submit_add(members))
            if i % 10 == 9:
                writer.submit_remove(int(rng.integers(h.num_edges)))
            time.sleep(0.005)  # a trickle, so readers interleave reloads
        writer.flush()
        elapsed = time.perf_counter() - start
        stats = writer.admission_stats()
        print(
            f"admitted {stats.applied} updates in {elapsed:.2f}s over "
            f"{stats.batches} group commits "
            f"(largest batch {stats.largest_batch}); "
            f"generation now {writer.generation}"
        )

        # 4. Stop the readers and verify every replica converged.
        stop_flag.set()
        for proc in readers:
            proc.join(timeout=30)
        expected_fp = writer.engine.fingerprint()
        expected_pr = writer.metric_by_hyperedge(2, "pagerank")
        for reader_id in sorted(results.keys()):
            info = results[reader_id]
            ok = (
                info["fingerprint"] == expected_fp
                and info["pagerank"] == expected_pr
            )
            print(
                f"reader {reader_id}: {info['queries']} queries, "
                f"{info['reloads']} hot reloads, generation {info['generation']} "
                f"-> {'CONSISTENT' if ok else 'MISMATCH'}"
            )
            assert ok, f"reader {reader_id} diverged from the writer"
    print("writer closed; lock released")


if __name__ == "__main__":
    main()
