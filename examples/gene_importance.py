#!/usr/bin/env python
"""Identifying genes critical to pathogenic viral response (paper Section V-A).

Builds a gene–condition hypergraph (genes as hyperedges, experimental
conditions as vertices — the virology transcriptomics surrogate), computes
s-line graphs for increasing s, and reports s-connected components and
s-betweenness centrality.  At s = 5 the six planted hub genes stand out,
with IFIT1 and USP18 (sharing > 100 conditions) ranked highest — the paper's
headline finding for this application.

Run:  python examples/gene_importance.py [--genes 600] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro.apps.genes import identify_important_genes
from repro.generators.datasets import virology_surrogate


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--genes", type=int, default=600, help="number of genes (hyperedges)")
    parser.add_argument("--seed", type=int, default=0, help="surrogate dataset seed")
    parser.add_argument("--top", type=int, default=6, help="how many top genes to report")
    args = parser.parse_args()

    hypergraph = virology_surrogate(num_genes=args.genes, seed=args.seed)
    print(
        f"Gene-condition hypergraph: {hypergraph.num_edges} genes over "
        f"{hypergraph.num_vertices} experimental conditions"
    )

    result = identify_important_genes(hypergraph, s_values=(1, 3, 5), top_k=args.top)

    print("\nLine-graph size vs s (the Figure 5 shrinkage):")
    for s in result.s_values:
        print(f"  s={s}: {result.line_graph_sizes[s]} edges")

    for s in (3, 5):
        print(f"\nTop {args.top} genes by {s}-betweenness centrality:")
        for name, score in result.top_genes[s][: args.top]:
            print(f"  {name:<12s} {score:.4f}")

    print("\n5-connected components (gene groups perturbed together in >= 5 conditions):")
    for component in result.components[5][:5]:
        print(f"  {component}")

    ifit1_usp18 = hypergraph.inc(
        hypergraph.edge_names.index("IFIT1"), hypergraph.edge_names.index("USP18")
    )
    print(f"\nIFIT1 and USP18 share {ifit1_usp18} experimental conditions (paper: > 100)")


if __name__ == "__main__":
    main()
