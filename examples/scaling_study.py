#!/usr/bin/env python
"""Algorithm-variant and scaling study on a surrogate dataset (paper Section VI).

Runs the twelve algorithm/partitioning/relabelling variants of the paper's
Table III on a Table IV surrogate dataset, reports speedups relative to the
1CN baseline (Figure 7), a strong-scaling sweep over worker counts
(Figure 8), the per-worker workload distribution (Figure 10), and a multi-s
sweep served by the overlap-index engine with its per-s speedup over the
per-s pipeline baseline.

Run:  python examples/scaling_study.py [--dataset livejournal] [--scale 0.4] [--s 8]
"""

from __future__ import annotations

import argparse
import time

import repro
from repro.benchmarks.reporting import format_series, format_speedups, format_table
from repro.core.algorithms.registry import ALL_VARIANTS, run_variant
from repro.core.pipeline import SLinePipeline
from repro.engine.engine import QueryEngine
from repro.generators.datasets import available_datasets, load_dataset
from repro.parallel.executor import ParallelConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", default="livejournal", choices=available_datasets())
    parser.add_argument("--scale", type=float, default=0.4, help="dataset scale factor")
    parser.add_argument("--s", type=int, default=8, help="overlap threshold")
    parser.add_argument("--workers", type=int, default=4, help="workers for the variant study")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    h = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    stats = repro.compute_stats(h)
    print(stats.as_table_row(f"{args.dataset} (scale={args.scale})"))

    # ------------------------------------------------------------------ #
    # Figure 7: variant speedups relative to 1CN.
    # ------------------------------------------------------------------ #
    print(f"\n== Variant study (s={args.s}, {args.workers} workers) ==")
    runtimes = {}
    for notation in ALL_VARIANTS:
        result = run_variant(h, args.s, notation, num_workers=args.workers)
        runtimes[notation] = result.total_seconds
    speedups = {k: runtimes["1CN"] / v for k, v in runtimes.items()}
    print(format_speedups(speedups, baseline="1CN"))

    # ------------------------------------------------------------------ #
    # Figure 8: strong scaling of Algorithm 2 (thread backend).
    # ------------------------------------------------------------------ #
    print("\n== Strong scaling of Algorithm 2 (2CA, thread backend) ==")
    series = []
    for workers in (1, 2, 4, 8):
        start = time.perf_counter()
        repro.s_line_graph(
            h, args.s, algorithm="vectorized",
            config=ParallelConfig(num_workers=workers, strategy="cyclic", backend="thread"),
        )
        series.append((workers, time.perf_counter() - start))
    print(format_series(series, x_label="workers", y_label="seconds"))

    # ------------------------------------------------------------------ #
    # Figure 10: per-worker workload distribution.
    # ------------------------------------------------------------------ #
    print("\n== Workload distribution across 8 logical workers (wedge visits) ==")
    rows = []
    for notation in ("2BN", "2CN", "2BA", "2CA", "2BD", "2CD"):
        result = run_variant(h, args.s, notation, num_workers=8)
        visits = result.workload.visits_per_worker().tolist()
        rows.append([notation, result.workload.imbalance()] + visits)
    headers = ["variant", "imbalance"] + [f"w{i}" for i in range(8)]
    print(format_table(headers, rows, float_format="{:.2f}"))

    # ------------------------------------------------------------------ #
    # Multi-s sweep: overlap-index engine vs. one pipeline run per s.
    # ------------------------------------------------------------------ #
    s_values = range(1, args.s + 1)
    print(f"\n== Multi-s sweep s=1..{args.s} (engine vs per-s pipeline) ==")
    pipeline = SLinePipeline(metrics=("connected_components",))
    start = time.perf_counter()
    baseline = {s: pipeline.run(h, s) for s in s_values}
    baseline_seconds = time.perf_counter() - start

    engine = QueryEngine(h)
    start = time.perf_counter()
    sweep = engine.sweep(s_values, metrics=("connected_components",))
    engine_seconds = time.perf_counter() - start

    rows = [
        [s, sweep.edge_counts[s], sweep.num_components(s)] for s in sweep.s_values
    ]
    print(format_table(["s", "edges", "components"], rows))
    assert all(
        sweep.edge_counts[s] == baseline[s].num_line_graph_edges for s in s_values
    )
    print(
        f"per-s pipeline: {baseline_seconds:.4f}s   engine sweep: "
        f"{engine_seconds:.4f}s ({baseline_seconds / engine_seconds:.1f}x)"
    )


if __name__ == "__main__":
    main()
